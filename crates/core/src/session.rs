//! A long-lived analysis session: the state `ofence serve` (and any
//! other multi-request driver) shares between overlapping requests.
//!
//! [`Session`] is the extraction ROADMAP item 1 asked for: the pieces a
//! one-shot CLI invocation wires together ad hoc — the [`Engine`] with
//! its parsed-AST/summary cache, the sharded disk cache, the history and
//! perf ledgers, and the live telemetry publisher — owned by one object
//! that can serve many concurrent `analyze` / `explain` / `diff` /
//! `baseline-gate` requests against one warm cache and one persistent
//! worker pool.
//!
//! ## Snapshot consistency
//!
//! Every analysis request starts by snapshotting the corpus from disk.
//! Requests race with editors, so a naive single pass over the files
//! could observe file A before an edit and file B after it — a **torn**
//! corpus whose findings belong to two different snapshots. The session
//! instead reads the corpus repeatedly until two consecutive passes hash
//! identically ([`SNAPSHOT_ATTEMPTS`] tries): any edit landing inside a
//! pass flips the next pass's hash, so a stable double read is a
//! consistent snapshot (assuming writers replace files atomically, the
//! usual tmp+rename discipline). The analysis then runs entirely from
//! that in-memory snapshot — the response is a pure function of it.
//!
//! ## Batching and coalescing
//!
//! Requests are keyed by `(corpus snapshot hash, config fingerprint)`.
//! A request arriving while an analysis with the same key is already in
//! flight does not queue a second run: it **joins** the in-flight one
//! and receives the very same [`RunHandle`] — identical findings,
//! identical `run_id` — which is how a CI fleet pushing the same commit
//! a hundred times costs one analysis. Distinct keys serialize on the
//! engine lock (the queue), each running against the cache the previous
//! request warmed. Coalesce and queue-depth counters are exported on
//! `/metrics` via [`obs::Live`].

use crate::cache;
use crate::config::AnalysisConfig;
use crate::engine::{AnalysisResult, Engine, SourceFile};
use crate::fingerprint::{finding_records, FindingRecord};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Passes the corpus snapshot loop makes before giving up on stability.
/// Two consecutive identical hashes end the loop early; a corpus edited
/// faster than it can be read twice is served best-effort from the last
/// pass (counted in `serve_snapshot_unstable`).
pub const SNAPSHOT_ATTEMPTS: usize = 8;

/// How a session is wired to disk: what it analyzes and where it keeps
/// its caches and ledgers. `None` directories disable that layer, the
/// same contract as the CLI's `--no-cache` / `--no-history`.
#[derive(Clone, Debug)]
pub struct SessionOptions {
    pub config: AnalysisConfig,
    /// Files or directories the session serves (searched for `*.c`).
    pub paths: Vec<String>,
    pub cache_dir: Option<PathBuf>,
    pub history_dir: Option<PathBuf>,
}

/// One finished (or joined) analysis run, shared by every request that
/// coalesced onto it.
pub struct RunHandle {
    /// The snapshot key this run was computed from.
    pub corpus_key: u64,
    /// The full analysis result (sites, pairing, findings, stats, obs).
    pub result: Arc<AnalysisResult>,
    /// Diffable records of the run's deviations, in report order.
    pub records: Vec<FindingRecord>,
}

/// An in-flight analysis other requests can join: the leader publishes
/// into `slot` and notifies; joiners wait on the condvar.
struct Flight {
    slot: Mutex<Option<Result<Arc<RunHandle>, String>>>,
    done: Condvar,
}

/// Latency samples kept per method for exact quantile computation; the
/// window is small enough to re-sort per request and large enough that
/// p99 over it is meaningful.
const QUANTILE_WINDOW: usize = 512;

/// Upper bound on request spans buffered between two publishes, so a
/// daemon hammered with failing requests (which never trigger a publish)
/// stays bounded. Oldest spans are dropped first.
const PENDING_SPAN_CAP: usize = 8192;

/// One request's identity and trace state, created at the server
/// boundary ([`Session::begin_request`]) and threaded through the
/// session method handling it. Every span the request emits goes into
/// its private recorder; on completion the session folds the finished
/// spans into a [`obs::RequestTrace`] retained behind `/debug/requests`
/// and the `trace` method.
pub struct RequestCtx {
    id: String,
    method: String,
    /// Request-scoped recorder overlay: spans recorded here belong to
    /// exactly this request.
    pub rec: obs::Recorder,
    coalesced: AtomicBool,
    run_id: Mutex<Option<String>>,
}

impl RequestCtx {
    /// The id echoed in the wire response (client-supplied or
    /// server-assigned).
    pub fn request_id(&self) -> &str {
        &self.id
    }

    pub fn method(&self) -> &str {
        &self.method
    }

    /// True once this request joined another request's in-flight run.
    pub fn coalesced(&self) -> bool {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// The analysis run this request returned — for coalesced joiners,
    /// the leader's run.
    pub fn run_id(&self) -> Option<String> {
        self.run_id
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn set_run_id(&self, run_id: &str) {
        *self.run_id.lock().unwrap_or_else(|e| e.into_inner()) = Some(run_id.to_string());
    }
}

/// Per-method latency accounting: a cumulative histogram (exported as
/// `serve_request_duration_us_<method>`) plus a bounded sample window
/// for exact p50/p95/p99.
#[derive(Debug, Default)]
struct MethodStat {
    hist: obs::Histogram,
    samples: VecDeque<u64>,
}

/// Cumulative session counters, exported on `/metrics` (as
/// `ofence_serve_*_total`) and in `status` responses. Queue depth is
/// `queue_enqueued - queue_dequeued`.
#[derive(Debug, Default)]
pub struct SessionCounters {
    pub requests: AtomicU64,
    pub errors: AtomicU64,
    pub coalesced: AtomicU64,
    pub runs: AtomicU64,
    pub queue_enqueued: AtomicU64,
    pub queue_dequeued: AtomicU64,
    pub snapshot_retries: AtomicU64,
    pub snapshot_unstable: AtomicU64,
}

impl SessionCounters {
    fn get(v: &AtomicU64) -> u64 {
        v.load(Ordering::Relaxed)
    }

    fn bump(v: &AtomicU64) {
        v.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one error response (the wire protocol calls this for
    /// failures that never reach a session method, e.g. parse errors).
    pub fn bump_errors(&self) {
        Self::bump(&self.errors);
    }

    /// Requests currently waiting for (or holding) the engine.
    pub fn queue_depth(&self) -> u64 {
        Self::get(&self.queue_enqueued).saturating_sub(Self::get(&self.queue_dequeued))
    }

    /// The counter pairs exported next to the engine's per-run counters.
    pub fn export(&self) -> Vec<(String, u64)> {
        [
            ("serve_requests", Self::get(&self.requests)),
            ("serve_errors", Self::get(&self.errors)),
            ("serve_coalesced", Self::get(&self.coalesced)),
            ("serve_runs", Self::get(&self.runs)),
            ("serve_queue_enqueued", Self::get(&self.queue_enqueued)),
            ("serve_queue_dequeued", Self::get(&self.queue_dequeued)),
            ("serve_snapshot_retries", Self::get(&self.snapshot_retries)),
            (
                "serve_snapshot_unstable",
                Self::get(&self.snapshot_unstable),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

pub struct Session {
    opts: SessionOptions,
    /// The engine — and with it the in-memory parsed-AST/summary cache —
    /// shared by every request. One analysis at a time; the per-file
    /// parallelism inside a run comes from the persistent global pool.
    engine: Mutex<Engine>,
    /// In-flight analyses by snapshot key, for coalescing.
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    pub counters: SessionCounters,
    /// Live telemetry published after every engine run; `ofence serve
    /// --metrics-addr` scrapes it.
    live: Arc<obs::Live>,
    /// Per-request latency across all methods, coalesced joins included.
    request_hist: Mutex<obs::Histogram>,
    /// Per-method latency histograms + quantile sample windows.
    method_stats: Mutex<BTreeMap<String, MethodStat>>,
    /// Finished request spans awaiting the next publish (drained there so
    /// a long-lived daemon's span list stays bounded).
    pending_spans: Mutex<Vec<obs::SpanRecord>>,
    /// Monotonic source of server-assigned request ids.
    request_seq: AtomicU64,
    started: Instant,
    /// Test hook: make the next [`Session::lead_run`] panic, to prove
    /// flight cleanup survives an unwinding analysis.
    #[cfg(test)]
    panic_next_lead: std::sync::atomic::AtomicBool,
}

impl Session {
    /// Create a session and hydrate the engine from the disk cache (a
    /// stale or corrupt cache is discarded silently, like the CLI path).
    pub fn new(opts: SessionOptions) -> Session {
        let mut engine = Engine::new(opts.config.clone());
        if let Some(dir) = &opts.cache_dir {
            let _ = engine.load_disk_cache(dir);
        }
        Session {
            opts,
            engine: Mutex::new(engine),
            inflight: Mutex::new(HashMap::new()),
            counters: SessionCounters::default(),
            live: Arc::new(obs::Live::new()),
            request_hist: Mutex::new(obs::Histogram::default()),
            method_stats: Mutex::new(BTreeMap::new()),
            pending_spans: Mutex::new(Vec::new()),
            request_seq: AtomicU64::new(0),
            started: Instant::now(),
            #[cfg(test)]
            panic_next_lead: std::sync::atomic::AtomicBool::new(false),
        }
    }

    pub fn options(&self) -> &SessionOptions {
        &self.opts
    }

    /// The live telemetry publisher (hand to [`obs::serve::serve`] for a
    /// `/metrics` + `/health` endpoint).
    pub fn live(&self) -> Arc<obs::Live> {
        self.live.clone()
    }

    /// Microseconds since the session started.
    pub fn uptime_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Snapshot the corpus from disk, re-reading until two consecutive
    /// passes hash identically (see module docs). Returns the sources
    /// and the snapshot key (corpus hash ⊕ config fingerprint).
    fn snapshot_sources(&self) -> Result<(Vec<SourceFile>, u64), String> {
        let mut prev: Option<(Vec<SourceFile>, u64)> = None;
        for _ in 0..SNAPSHOT_ATTEMPTS {
            let sources = crate::walk::collect_sources(&self.opts.paths)?;
            let key = corpus_key(&sources, &self.opts.config);
            match prev {
                Some((_, prev_key)) if prev_key == key => return Ok((sources, key)),
                Some(_) => SessionCounters::bump(&self.counters.snapshot_retries),
                None => {}
            }
            prev = Some((sources, key));
        }
        SessionCounters::bump(&self.counters.snapshot_unstable);
        Ok(prev.expect("at least one snapshot pass ran"))
    }

    /// A fresh server-assigned request id (`r000001`, `r000002`, ...).
    /// The wire layer uses these for requests whose clients did not
    /// supply an id — including requests too broken to dispatch.
    pub fn assign_request_id(&self) -> String {
        format!(
            "r{:06}",
            self.request_seq.fetch_add(1, Ordering::Relaxed) + 1
        )
    }

    /// Open a request context: the identity + trace state every tracked
    /// session method takes. `client_id` is the wire envelope's
    /// `request_id` when the client supplied one.
    pub fn begin_request(&self, method: &str, client_id: Option<String>) -> Arc<RequestCtx> {
        let id = client_id.unwrap_or_else(|| self.assign_request_id());
        Arc::new(RequestCtx {
            id,
            method: method.to_string(),
            rec: obs::Recorder::new(),
            coalesced: AtomicBool::new(false),
            run_id: Mutex::new(None),
        })
    }

    /// Count and time one request around `f` (joins included): bumps
    /// `serve_requests`, bumps `serve_errors` on failure, feeds the
    /// latency histograms, and retains the request's trace.
    fn tracked<T>(
        &self,
        ctx: &RequestCtx,
        f: impl FnOnce() -> Result<T, String>,
    ) -> Result<T, String> {
        let t0 = Instant::now();
        SessionCounters::bump(&self.counters.requests);
        let out = f();
        if out.is_err() {
            SessionCounters::bump(&self.counters.errors);
        }
        let latency_us = t0.elapsed().as_micros() as u64;
        self.request_hist
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .observe(latency_us);
        self.finish_request(ctx, out.is_ok(), latency_us);
        out
    }

    /// Close out a completed request: fold its latency into the
    /// per-method stats (republishing quantiles), queue its spans for the
    /// next publish, retain its trace, and append its ledger line.
    fn finish_request(&self, ctx: &RequestCtx, ok: bool, latency_us: u64) {
        let spans = ctx.rec.snapshot().spans;
        {
            let mut stats = self.method_stats.lock().unwrap_or_else(|e| e.into_inner());
            let stat = stats.entry(ctx.method.clone()).or_default();
            stat.hist.observe(latency_us);
            if stat.samples.len() == QUANTILE_WINDOW {
                stat.samples.pop_front();
            }
            stat.samples.push_back(latency_us);
            let quantiles = stats
                .iter()
                .map(|(method, stat)| {
                    let mut window: Vec<u64> = stat.samples.iter().copied().collect();
                    let (p50_us, p95_us, p99_us) = obs::quantiles_us(&mut window);
                    obs::MethodQuantiles {
                        method: method.clone(),
                        count: stat.hist.count,
                        p50_us,
                        p95_us,
                        p99_us,
                    }
                })
                .collect();
            self.live.set_method_quantiles(quantiles);
        }
        {
            let mut pending = self.pending_spans.lock().unwrap_or_else(|e| e.into_inner());
            pending.extend(spans.iter().cloned());
            if pending.len() > PENDING_SPAN_CAP {
                let excess = pending.len() - PENDING_SPAN_CAP;
                pending.drain(..excess);
            }
        }
        if let Some(dir) = &self.opts.history_dir {
            let _ = crate::perf::append_request(
                dir,
                &crate::perf::request_record_of(
                    ctx.request_id(),
                    ctx.method(),
                    ok,
                    latency_us,
                    ctx.coalesced(),
                    ctx.run_id(),
                ),
            );
        }
        self.live.record_trace(obs::RequestTrace {
            request_id: ctx.id.clone(),
            method: ctx.method.clone(),
            latency_us,
            outcome: if ok { "ok" } else { "error" }.to_string(),
            coalesced: ctx.coalesced(),
            run_id: ctx.run_id(),
            spans,
        });
    }

    /// The per-method latency quantiles over the current sample windows,
    /// for the in-band `status` document.
    fn method_quantiles(&self) -> Vec<obs::MethodQuantiles> {
        let stats = self.method_stats.lock().unwrap_or_else(|e| e.into_inner());
        stats
            .iter()
            .map(|(method, stat)| {
                let mut window: Vec<u64> = stat.samples.iter().copied().collect();
                let (p50_us, p95_us, p99_us) = obs::quantiles_us(&mut window);
                obs::MethodQuantiles {
                    method: method.clone(),
                    count: stat.hist.count,
                    p50_us,
                    p95_us,
                    p99_us,
                }
            })
            .collect()
    }

    /// The current analysis of the watched corpus: snapshot, coalesce,
    /// run. Every analysis-backed method funnels through here.
    pub fn current_run(&self) -> Result<Arc<RunHandle>, String> {
        let ctx = self.begin_request("analyze", None);
        self.tracked(&ctx, || {
            let _span = ctx.rec.span_with(
                "request",
                &[("method", ctx.method()), ("request_id", ctx.request_id())],
            );
            self.current_run_inner(&ctx)
        })
    }

    fn current_run_inner(&self, ctx: &RequestCtx) -> Result<Arc<RunHandle>, String> {
        let (sources, key) = self.snapshot_sources()?;
        // Join an in-flight run of the same snapshot, or lead a new one.
        let (flight, leader) = {
            let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            match map.get(&key) {
                Some(f) => {
                    SessionCounters::bump(&self.counters.coalesced);
                    (f.clone(), false)
                }
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    map.insert(key, f.clone());
                    (f, true)
                }
            }
        };
        if !leader {
            ctx.coalesced.store(true, Ordering::Relaxed);
            let outcome = {
                let _span = ctx
                    .rec
                    .span_with("coalesce", &[("request_id", ctx.request_id())]);
                let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
                while slot.is_none() {
                    slot = flight.done.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
                slot.clone().expect("leader published before notify")
            };
            // Record which leader run this request joined.
            if let Ok(handle) = &outcome {
                ctx.set_run_id(&handle.result.run_id);
            }
            return outcome;
        }
        // The leader MUST reach the cleanup below even if the analysis
        // panics: an unwind that skipped it would leave the dead flight
        // in `inflight` with an empty slot, wedging every waiting and
        // future request for this key on the condvar forever. Convert
        // the panic to an error so joiners are notified and the flight
        // retires; the engine's own lock recovers from the poisoning.
        let outcome = match catch_unwind(AssertUnwindSafe(|| self.lead_run(ctx, &sources, key))) {
            Ok(outcome) => outcome,
            Err(panic) => Err(format!(
                "analysis panicked: {}",
                panic_message(panic.as_ref())
            )),
        };
        if let Ok(handle) = &outcome {
            ctx.set_run_id(&handle.result.run_id);
        }
        // Publish to joiners and retire the flight — later identical
        // requests start a fresh (warm, cheap) run rather than receiving
        // a stale result forever.
        {
            let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
            map.remove(&key);
        }
        let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(outcome.clone());
        flight.done.notify_all();
        outcome
    }

    /// Run the engine over a snapshot (leader side of a flight).
    fn lead_run(
        &self,
        ctx: &RequestCtx,
        sources: &[SourceFile],
        key: u64,
    ) -> Result<Arc<RunHandle>, String> {
        #[cfg(test)]
        if self.panic_next_lead.swap(false, Ordering::SeqCst) {
            panic!("injected lead_run panic");
        }
        SessionCounters::bump(&self.counters.queue_enqueued);
        let run_span = ctx.rec.open("serve_run");
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        SessionCounters::bump(&self.counters.queue_dequeued);
        let result = engine.analyze_incremental(sources);
        if let Some(dir) = &self.opts.cache_dir {
            // A full disk is not a failed analysis: the result stands,
            // the next cold start just pays the re-parse.
            let _ = engine.save_disk_cache(dir);
        }
        drop(engine);
        ctx.rec.close(run_span);
        SessionCounters::bump(&self.counters.runs);
        let records = finding_records(&result.deviations, &result.sites, &result.files);
        if let Some(dir) = &self.opts.history_dir {
            let run_record = crate::history::record_of(&result, &self.opts.config, records.clone());
            let _ = crate::history::append(dir, &run_record);
            let perf_record = crate::perf::record_of(&result, &self.opts.config, None);
            let _ = crate::perf::append(dir, &perf_record);
        }
        let handle = Arc::new(RunHandle {
            corpus_key: key,
            result: Arc::new(result),
            records,
        });
        self.publish(&handle);
        Ok(handle)
    }

    /// Publish the latest run to the live endpoint: the engine's per-run
    /// snapshot merged with the session's cumulative counters, request
    /// spans since the last publish, and the request-latency histograms
    /// (all-methods plus one per method).
    fn publish(&self, handle: &RunHandle) {
        let request_spans = {
            let mut pending = self.pending_spans.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *pending)
        };
        let mut merged = handle.result.obs.with_counters(self.counters.export());
        merged.spans.extend(request_spans);
        let mut merged = merged.with_histogram(
            "serve_request_duration_us",
            self.request_hist
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
        );
        {
            let stats = self.method_stats.lock().unwrap_or_else(|e| e.into_inner());
            for (method, stat) in stats.iter() {
                merged = merged.with_histogram(
                    &format!("serve_request_duration_us_{method}"),
                    stat.hist.clone(),
                );
            }
        }
        self.live.publish(
            &merged,
            handle.records.len() as u64,
            handle.result.stats.elapsed_ms * 1000,
        );
        self.live.set_server_stats(
            self.counters.queue_depth(),
            SessionCounters::get(&self.counters.coalesced),
            SessionCounters::get(&self.counters.requests),
        );
    }

    /// Open this request's root span on its private recorder; every
    /// later span (coalesce wait, engine run) nests under it, and both
    /// attributes ride into the captured trace.
    fn request_span<'a>(&self, ctx: &'a RequestCtx) -> obs::SpanGuard<'a> {
        ctx.rec.span_with(
            "request",
            &[("method", ctx.method()), ("request_id", ctx.request_id())],
        )
    }

    /// `analyze`: the full schema-v3 report — the exact document
    /// `ofence analyze --json` prints for the same snapshot.
    pub fn analyze_document(&self, ctx: &RequestCtx) -> Result<serde_json::Value, String> {
        self.tracked(ctx, || {
            let _span = self.request_span(ctx);
            let handle = self.current_run_inner(ctx)?;
            Ok(handle.result.to_json())
        })
    }

    /// `analyze-file`: the slice of the current run belonging to one
    /// file (exact name, or unambiguous path suffix).
    pub fn analyze_file_document(
        &self,
        ctx: &RequestCtx,
        file: &str,
    ) -> Result<serde_json::Value, String> {
        self.tracked(ctx, || {
            let _span = self.request_span(ctx);
            let handle = self.current_run_inner(ctx)?;
            let result = &handle.result;
            let matches: Vec<usize> = result
                .files
                .iter()
                .enumerate()
                .filter(|(_, fa)| name_matches(&fa.name, file))
                .map(|(i, _)| i)
                .collect();
            let idx = match matches.as_slice() {
                [one] => *one,
                [] => return Err(format!("no corpus file matches `{file}`")),
                _ => {
                    return Err(format!(
                        "`{file}` is ambiguous: matches {} corpus files",
                        matches.len()
                    ))
                }
            };
            let fa = &result.files[idx];
            let findings: Vec<&FindingRecord> = handle
                .records
                .iter()
                .filter(|r| r.file == fa.name)
                .collect();
            Ok(serde_json::json!({
                "schema_version": crate::json::SCHEMA_VERSION,
                "run_id": result.run_id,
                "file": fa.name,
                "barriers": fa.sites.len(),
                "functions": fa.functions.len(),
                "parse_errors": fa.parse_error_count,
                "findings": findings,
            }))
        })
    }

    /// `explain`: replay the pairing decision for the barrier at
    /// `file:line` — the exact document `ofence explain --json` prints.
    pub fn explain_document(
        &self,
        ctx: &RequestCtx,
        file: &str,
        line: u32,
    ) -> Result<serde_json::Value, String> {
        self.tracked(ctx, || {
            let _span = self.request_span(ctx);
            let handle = self.current_run_inner(ctx)?;
            let result = &handle.result;
            let site = result
                .sites
                .iter()
                .find(|s| name_matches(&s.site.file_name, file) && s.site.line == line)
                .ok_or_else(|| format!("no barrier at {file}:{line}"))?;
            let explanation = crate::explain::explain_site_with(
                &result.sites,
                &result.pairing,
                &self.opts.config,
                site.id,
            )
            .expect("site id comes from this result");
            Ok(serde_json::to_value(&explanation))
        })
    }

    /// `diff`: classify findings across two ledger runs (ids or
    /// unambiguous prefixes) — the exact document `ofence diff --json`
    /// prints for the same operands.
    pub fn diff_document(
        &self,
        ctx: &RequestCtx,
        old: &str,
        new: &str,
    ) -> Result<serde_json::Value, String> {
        self.tracked(ctx, || {
            let _span = self.request_span(ctx);
            let dir = self
                .opts
                .history_dir
                .as_ref()
                .ok_or("this session runs without a history ledger; diff is unavailable")?;
            let old_records = crate::history::find(dir, old)?.findings;
            let new_records = crate::history::find(dir, new)?.findings;
            Ok(crate::diffing::classify(&old_records, &new_records).to_json())
        })
    }

    /// `baseline-gate`: analyze the current corpus, classify against an
    /// inline baseline document, and report whether the `fail_on`
    /// policy passes.
    pub fn baseline_gate_document(
        &self,
        ctx: &RequestCtx,
        baseline: &serde_json::Value,
        fail_on: crate::diffing::FailOn,
    ) -> Result<serde_json::Value, String> {
        self.tracked(ctx, || {
            let _span = self.request_span(ctx);
            let known = crate::diffing::records_from_json(baseline)
                .map_err(|e| format!("baseline document: {e}"))?;
            let handle = self.current_run_inner(ctx)?;
            let report = crate::diffing::classify(&known, &handle.records);
            let pass = match fail_on {
                crate::diffing::FailOn::Any => report.new.is_empty() && report.unchanged.is_empty(),
                crate::diffing::FailOn::New => report.new.is_empty(),
                crate::diffing::FailOn::None => true,
            };
            Ok(serde_json::json!({
                "run_id": handle.result.run_id,
                "pass": pass,
                "report": report.to_json(),
            }))
        })
    }

    /// `status`: session health — uptime, counters, queue depth, cache
    /// economics, and per-method latency quantiles. Cheap: never
    /// triggers an analysis.
    pub fn status_document(&self) -> serde_json::Value {
        let counters: serde_json::Map<String, serde_json::Value> = self
            .counters
            .export()
            .into_iter()
            .map(|(k, v)| (k, serde_json::Value::from(v)))
            .collect();
        let methods: serde_json::Map<String, serde_json::Value> = self
            .method_quantiles()
            .into_iter()
            .map(|q| {
                (
                    q.method,
                    serde_json::json!({
                        "count": q.count,
                        "p50_us": q.p50_us,
                        "p95_us": q.p95_us,
                        "p99_us": q.p99_us,
                    }),
                )
            })
            .collect();
        serde_json::json!({
            "uptime_us": self.uptime_us(),
            "paths": self.opts.paths,
            "queue_depth": self.counters.queue_depth(),
            "counters": counters,
            "methods": methods,
        })
    }

    /// `trace`: the captured span tree of a completed request, looked up
    /// by request id in the bounded recent/slowest rings. Cheap and
    /// untracked, like `status` — fetching a trace never perturbs the
    /// latency data it reports.
    pub fn trace_document(&self, request_id: &str) -> Result<serde_json::Value, String> {
        let json = self.live.trace_json(request_id).ok_or_else(|| {
            format!("no captured trace for request id `{request_id}` (evicted or never seen)")
        })?;
        serde_json::from_str(&json)
            .map_err(|e| format!("internal: captured trace is not valid JSON: {e}"))
    }
}

/// Best-effort text of a caught panic payload (shared with the wire
/// protocol's handler-panic backstop in [`crate::server`]).
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// Exact name, or path-suffix match in either direction — the same rule
/// `ofence explain` applies to its `<file:line>` target.
fn name_matches(name: &str, wanted: &str) -> bool {
    name == wanted || name.ends_with(&format!("/{wanted}")) || wanted.ends_with(&format!("/{name}"))
}

/// The coalescing key: FNV over every `(path, content hash)` pair plus
/// the config fingerprint. Two requests share a key iff they observe the
/// same corpus bytes under the same analysis configuration.
pub fn corpus_key(sources: &[SourceFile], config: &AnalysisConfig) -> u64 {
    let mut acc = String::new();
    for s in sources {
        acc.push_str(&s.name);
        acc.push(':');
        acc.push_str(&format!(
            "{:016x}",
            cache::content_hash(s.content.as_bytes())
        ));
        acc.push('\n');
    }
    acc.push_str(&format!("{:016x}", cache::config_fingerprint(config)));
    cache::content_hash(acc.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ofence-session-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    const CLEAN: &str = "struct m { int init; int y; };\n\
void reader(struct m *a) { if (!a->init) return; smp_rmb(); f(a->y); }\n\
void writer(struct m *b) { b->y = 1; smp_wmb(); b->init = 1; }\n";

    fn session_over(dir: &std::path::Path) -> Session {
        Session::new(SessionOptions {
            config: AnalysisConfig::default(),
            paths: vec![dir.display().to_string()],
            cache_dir: None,
            history_dir: None,
        })
    }

    fn ctx(session: &Session, method: &str) -> Arc<RequestCtx> {
        session.begin_request(method, None)
    }

    #[test]
    fn analyze_document_matches_engine_output() {
        let dir = tempdir("doc");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let doc = session.analyze_document(&ctx(&session, "analyze")).unwrap();
        assert_eq!(doc["schema_version"], crate::json::SCHEMA_VERSION);
        assert_eq!(doc["sites"].as_array().unwrap().len(), 2);
        assert_eq!(doc["pairings"].as_array().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_snapshots_share_a_key_and_edits_change_it() {
        let dir = tempdir("key");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let (s1, k1) = session.snapshot_sources().unwrap();
        let (_, k2) = session.snapshot_sources().unwrap();
        assert_eq!(k1, k2);
        assert_eq!(s1.len(), 1);
        std::fs::write(dir.join("m.c"), format!("{CLEAN}\nint pad;\n")).unwrap();
        let (_, k3) = session.snapshot_sources().unwrap();
        assert_ne!(k1, k3);
        // Config changes the key too: same bytes, different analysis.
        let other = Session::new(SessionOptions {
            config: AnalysisConfig {
                write_window: 9,
                ..Default::default()
            },
            paths: vec![dir.display().to_string()],
            cache_dir: None,
            history_dir: None,
        });
        let (_, k4) = other.snapshot_sources().unwrap();
        assert_ne!(k3, k4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequential_requests_do_not_coalesce_but_reuse_the_cache() {
        let dir = tempdir("seq");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let a = session.current_run().unwrap();
        let b = session.current_run().unwrap();
        // Two sequential runs: distinct run ids, zero coalescing, warm
        // second run.
        assert_ne!(a.result.run_id, b.result.run_id);
        assert_eq!(SessionCounters::get(&session.counters.coalesced), 0);
        assert_eq!(b.result.obs.count_of("engine_cache_hits"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overlapping_identical_requests_coalesce_to_one_run_id() {
        let dir = tempdir("coalesce");
        // A corpus big enough that the analysis has an in-flight window.
        for i in 0..24 {
            std::fs::write(dir.join(format!("f{i:02}.c")), CLEAN).unwrap();
        }
        let session = Arc::new(session_over(&dir));
        let mut run_ids: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let session = session.clone();
                    scope.spawn(move || session.current_run().unwrap().result.run_id.clone())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        run_ids.sort();
        run_ids.dedup();
        let coalesced = SessionCounters::get(&session.counters.coalesced);
        // Exactly one engine run per distinct run id; every other
        // request joined one of them.
        assert_eq!(
            run_ids.len() as u64 + coalesced,
            8,
            "run_ids={run_ids:?} coalesced={coalesced}"
        );
        assert_eq!(
            SessionCounters::get(&session.counters.runs),
            run_ids.len() as u64
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explain_and_file_slice_work_from_one_warm_run() {
        let dir = tempdir("methods");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let explanation = session
            .explain_document(&ctx(&session, "explain"), "m.c", 2)
            .unwrap();
        assert!(explanation["target"].is_object(), "{explanation}");
        let slice = session
            .analyze_file_document(&ctx(&session, "analyze-file"), "m.c")
            .unwrap();
        assert_eq!(slice["barriers"], 2);
        assert!(session
            .explain_document(&ctx(&session, "explain"), "m.c", 999)
            .is_err());
        assert!(session
            .analyze_file_document(&ctx(&session, "analyze-file"), "nope.c")
            .is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_resolves_ledger_runs() {
        let dir = tempdir("diff");
        let corpus = dir.join("src");
        std::fs::create_dir_all(&corpus).unwrap();
        std::fs::write(corpus.join("m.c"), CLEAN).unwrap();
        let session = Session::new(SessionOptions {
            config: AnalysisConfig::default(),
            paths: vec![corpus.display().to_string()],
            cache_dir: None,
            history_dir: Some(dir.join("ledger")),
        });
        let a = session.current_run().unwrap().result.run_id.clone();
        // Introduce a bug: reader loses its fence ordering — simplest is
        // a misplaced access corpus pattern appended to the file.
        let buggy = format!(
            "{CLEAN}\nstruct rpc {{ int len; int recd; }};\n\
void complete(struct rpc *req) {{ req->len = 4; smp_wmb(); req->recd = 1; }}\n\
void decode(struct rpc *req) {{ smp_rmb(); if (!req->recd) return; g(req->len); }}\n"
        );
        std::fs::write(corpus.join("m.c"), buggy).unwrap();
        let b = session.current_run().unwrap().result.run_id.clone();
        let report = session
            .diff_document(&ctx(&session, "diff"), &a, &b)
            .unwrap();
        assert_eq!(report["summary"]["new"], 1, "{report}");
        assert_eq!(report["summary"]["fixed"], 0, "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_gate_passes_and_fails() {
        let dir = tempdir("gate");
        let buggy = "struct rpc { int len; int recd; };\n\
void complete(struct rpc *req) { req->len = 4; smp_wmb(); req->recd = 1; }\n\
void decode(struct rpc *req) { smp_rmb(); if (!req->recd) return; g(req->len); }\n";
        std::fs::write(dir.join("m.c"), buggy).unwrap();
        let session = session_over(&dir);
        // Empty baseline: the finding is new, the gate fails.
        let empty = serde_json::json!({ "findings": [] });
        let out = session
            .baseline_gate_document(
                &ctx(&session, "baseline-gate"),
                &empty,
                crate::diffing::FailOn::New,
            )
            .unwrap();
        assert_eq!(out["pass"], false, "{out}");
        // Baseline = current findings: nothing new, the gate passes.
        let doc = session.analyze_document(&ctx(&session, "analyze")).unwrap();
        let out = session
            .baseline_gate_document(
                &ctx(&session, "baseline-gate"),
                &doc,
                crate::diffing::FailOn::New,
            )
            .unwrap();
        assert_eq!(out["pass"], true, "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leader_panic_retires_the_flight_and_reports_an_error() {
        let dir = tempdir("panic");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        session
            .panic_next_lead
            .store(true, std::sync::atomic::Ordering::SeqCst);
        // The panicking leader must come back as an error, not an unwind
        // that strands the flight.
        let err = session.current_run().err().expect("leader panic surfaced");
        assert!(err.contains("analysis panicked"), "{err}");
        assert!(err.contains("injected lead_run panic"), "{err}");
        assert_eq!(SessionCounters::get(&session.counters.errors), 1);
        // The dead flight was removed: the same key leads a fresh run
        // instead of joining it (which would hang forever).
        assert!(
            session
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty(),
            "panicked flight left in the inflight map"
        );
        let handle = session.current_run().unwrap();
        assert!(!handle.records.is_empty() || handle.result.stats.files_total == 1);
        assert_eq!(SessionCounters::get(&session.counters.coalesced), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn joiners_survive_a_panicking_leader() {
        let dir = tempdir("panic-join");
        for i in 0..24 {
            std::fs::write(dir.join(format!("f{i:02}.c")), CLEAN).unwrap();
        }
        let session = Arc::new(session_over(&dir));
        // Exactly one request leads and panics; everyone who coalesced
        // onto it must be woken with the leader's error, and later
        // requests must be able to run clean.
        session
            .panic_next_lead
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let outcomes: Vec<Result<Arc<RunHandle>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let session = session.clone();
                    scope.spawn(move || session.current_run())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // No thread hung (we got here), and every outcome is either the
        // panic error or a successful run led after the flight retired.
        assert!(outcomes.iter().any(|o| o.is_err()), "panic never surfaced");
        for outcome in &outcomes {
            if let Err(e) = outcome {
                assert!(e.contains("analysis panicked"), "{e}");
            }
        }
        assert!(session
            .inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty());
        assert!(session.current_run().is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn method_failures_count_as_request_errors() {
        let dir = tempdir("errcount");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        assert!(session
            .analyze_file_document(&ctx(&session, "analyze-file"), "nope.c")
            .is_err());
        assert!(session
            .explain_document(&ctx(&session, "explain"), "m.c", 999)
            .is_err());
        let bad = serde_json::json!({ "findings": "not-a-list" });
        assert!(session
            .baseline_gate_document(
                &ctx(&session, "baseline-gate"),
                &bad,
                crate::diffing::FailOn::New
            )
            .is_err());
        // Each failed request counted exactly once — including failures
        // that happen *after* the underlying analysis succeeded.
        assert_eq!(SessionCounters::get(&session.counters.errors), 3);
        assert_eq!(SessionCounters::get(&session.counters.requests), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_is_cheap_and_counts_nothing() {
        let dir = tempdir("status");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let status = session.status_document();
        assert_eq!(status["queue_depth"], 0);
        assert_eq!(SessionCounters::get(&session.counters.runs), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_requests_leave_fetchable_traces() {
        let dir = tempdir("trace");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let handle = session.current_run().unwrap();
        // The first server-assigned id is r000001; its trace carries the
        // leader's run id and a tree with the request + serve_run spans.
        let doc = session.trace_document("r000001").unwrap();
        assert_eq!(doc["method"], "analyze");
        assert_eq!(doc["outcome"], "ok");
        assert_eq!(doc["coalesced"], false);
        assert_eq!(doc["run_id"], handle.result.run_id.as_str());
        assert!(doc["span_count"].as_u64().unwrap() >= 2, "{doc}");
        let root = &doc["spans"][0];
        assert_eq!(root["name"], "request");
        assert_eq!(root["attrs"]["request_id"], "r000001");
        let children = root["children"].as_array().unwrap();
        assert!(children.iter().any(|c| c["name"] == "serve_run"), "{doc}");
        // Total tree time fits inside the reported latency.
        let latency = doc["latency_us"].as_u64().unwrap();
        assert!(root["dur_us"].as_u64().unwrap() <= latency, "{doc}");
        // Unknown ids fail cleanly, without counting a request.
        assert!(session.trace_document("nope").is_err());
        assert_eq!(SessionCounters::get(&session.counters.requests), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn client_supplied_request_ids_are_preserved() {
        let dir = tempdir("client-id");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        let ctx = session.begin_request("analyze", Some("ci-42".to_string()));
        assert_eq!(ctx.request_id(), "ci-42");
        session.analyze_document(&ctx).unwrap();
        let doc = session.trace_document("ci-42").unwrap();
        assert_eq!(doc["request_id"], "ci-42");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coalesced_joiners_record_the_leader_run() {
        let dir = tempdir("join-attr");
        for i in 0..24 {
            std::fs::write(dir.join(format!("f{i:02}.c")), CLEAN).unwrap();
        }
        let session = Arc::new(session_over(&dir));
        let run_ids: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let session = session.clone();
                    scope.spawn(move || session.current_run().unwrap().result.run_id.clone())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let summary: serde_json::Value =
            serde_json::from_str(&session.live().traces_summary_json()).unwrap();
        let recent = summary["recent"].as_array().unwrap();
        assert_eq!(recent.len(), 8);
        let coalesced = SessionCounters::get(&session.counters.coalesced);
        let marked = recent.iter().filter(|t| t["coalesced"] == true).count() as u64;
        assert_eq!(marked, coalesced, "{summary}");
        for t in recent {
            // Every trace — joiner or leader — names the run it returned,
            // and that run really happened.
            let run_id = t["run_id"].as_str().expect("run_id recorded");
            assert!(run_ids.iter().any(|r| r == run_id), "{summary}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reports_per_method_quantiles() {
        let dir = tempdir("quantiles");
        std::fs::write(dir.join("m.c"), CLEAN).unwrap();
        let session = session_over(&dir);
        session.analyze_document(&ctx(&session, "analyze")).unwrap();
        session
            .explain_document(&ctx(&session, "explain"), "m.c", 2)
            .unwrap();
        let status = session.status_document();
        for method in ["analyze", "explain"] {
            let q = &status["methods"][method];
            assert_eq!(q["count"], 1, "{status}");
            assert!(q["p50_us"].as_u64().unwrap() <= q["p99_us"].as_u64().unwrap());
        }
        // The live endpoint carries the same quantiles.
        let metrics = session.live().metrics_text();
        assert!(
            metrics
                .contains("ofence_serve_method_duration_us{method=\"analyze\",quantile=\"0.99\"}"),
            "{metrics}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn requests_ledger_records_every_completed_request() {
        let dir = tempdir("req-ledger");
        let corpus = dir.join("src");
        std::fs::create_dir_all(&corpus).unwrap();
        std::fs::write(corpus.join("m.c"), CLEAN).unwrap();
        let ledger = dir.join("ledger");
        let session = Session::new(SessionOptions {
            config: AnalysisConfig::default(),
            paths: vec![corpus.display().to_string()],
            cache_dir: None,
            history_dir: Some(ledger.clone()),
        });
        session.analyze_document(&ctx(&session, "analyze")).unwrap();
        assert!(session
            .analyze_file_document(&ctx(&session, "analyze-file"), "nope.c")
            .is_err());
        let (records, skipped) = crate::perf::load_requests(&ledger).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].method, "analyze");
        assert!(records[0].ok);
        assert!(records[0].run_id.is_some());
        assert_eq!(records[1].method, "analyze-file");
        assert!(!records[1].ok);
        assert!(!records[0].request_id.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
