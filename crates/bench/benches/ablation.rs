//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! distance weighting, callee/caller expansion, implicit-IPC detection,
//! window sizes, and the minimum shared-object requirement.
//!
//! These measure *quality* via assertions (pairing recall / decoy count
//! changes) and *cost* via criterion timing, so a regression in either
//! shows up in `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofence::AnalysisConfig;
use ofence_bench::harness::evaluate_corpus;
use ofence_corpus::{generate, BugPlan, CorpusSpec};

fn corpus() -> ofence_corpus::Corpus {
    let spec = CorpusSpec {
        seed: 21,
        files: 150,
        patterns_per_file: 1,
        noise_per_file: 2,
        decoy_pairs: 5,
        far_decoy_pairs: 2,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 3,
        unfenced_decoys: 3,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan {
            misplaced: 4,
            repeated_read: 2,
            wrong_type: 1,
            unneeded: 6,
            missing_barrier: 3,
        },
    };
    generate(&spec)
}

fn variants() -> Vec<(&'static str, AnalysisConfig)> {
    let base = AnalysisConfig::default();
    vec![
        ("baseline", base.clone()),
        (
            "no_distance_weighting",
            AnalysisConfig {
                distance_weighting: false,
                ..base.clone()
            },
        ),
        (
            "no_callee_expansion",
            AnalysisConfig {
                callee_expansion: false,
                caller_expansion: false,
                ..base.clone()
            },
        ),
        (
            "no_implicit_ipc",
            AnalysisConfig {
                implicit_ipc: false,
                ..base.clone()
            },
        ),
        (
            "min_objects_3",
            AnalysisConfig {
                min_shared_objects: 3,
                ..base.clone()
            },
        ),
        (
            "narrow_windows_2_10",
            AnalysisConfig {
                write_window: 2,
                read_window: 10,
                ..base.clone()
            },
        ),
        (
            "wide_windows_20_100",
            AnalysisConfig {
                write_window: 20,
                read_window: 100,
                ..base.clone()
            },
        ),
        (
            "pair_with_atomics",
            AnalysisConfig {
                pair_with_atomics: true,
                ..base.clone()
            },
        ),
        // Dataflow ablations: fall back to the bounded-window re-read
        // heuristic (more FPs on benign re-reads)...
        (
            "window_reread",
            AnalysisConfig {
                dataflow_reread: false,
                ..base.clone()
            },
        ),
        // ...turn the missing-barrier detector on (finds the injected
        // missing fences)...
        (
            "missing_detector",
            AnalysisConfig {
                detect_missing: true,
                ..base.clone()
            },
        ),
        // ...and additionally drop its outlier rule (reports every
        // fence-less overlap, adding FPs on the unfenced decoys).
        (
            "missing_no_outlier",
            AnalysisConfig {
                detect_missing: true,
                outlier_rule: false,
                ..base
            },
        ),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for (name, config) in variants() {
        // Print the quality numbers once per variant so the ablation table
        // lands in the bench log.
        let (result, summary) = evaluate_corpus(&corpus, config.clone());
        println!(
            "ablation {name:<24} pairings={:<4} recall={:.2} decoys={} bugs={}/{} fps={}",
            result.stats.pairings,
            summary.pairing_recall,
            summary.decoy_pairings_found,
            summary.bugs_found,
            summary.bugs_injected,
            summary.bug_false_positives,
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                let (result, _) = evaluate_corpus(&corpus, config.clone());
                result.stats.pairings
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
