//! Pairing-stage benchmarks: Algorithm 1 cost as a function of barrier
//! count, isolated from parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofence::pairing::pair_barriers;
use ofence::{AnalysisConfig, BarrierId, BarrierSite};
use ofence_bench::harness::to_source_files;
use ofence_corpus::{generate, BugPlan, CorpusSpec};

/// Extract the barrier sites of a corpus once (the benchmark input).
fn sites_for(files: usize) -> Vec<BarrierSite> {
    let spec = CorpusSpec {
        seed: 11,
        files,
        patterns_per_file: 1,
        noise_per_file: 1,
        decoy_pairs: files / 40,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan::none(),
    };
    let corpus = generate(&spec);
    let config = AnalysisConfig::default();
    let mut sites = Vec::new();
    for (i, f) in to_source_files(&corpus).iter().enumerate() {
        let parsed = ckit::parse_string(&f.name, &f.content).expect("corpus parses");
        let fa = ofence::sites::analyze_file(i, &parsed, &config);
        for mut s in fa.sites {
            s.id = BarrierId(sites.len() as u32);
            sites.push(s);
        }
    }
    sites
}

fn bench_pairing_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairing_algorithm1");
    group.sample_size(20);
    for files in [100usize, 300, 600] {
        let sites = sites_for(files);
        let config = AnalysisConfig::default();
        group.bench_with_input(
            BenchmarkId::new("barriers", sites.len()),
            &sites,
            |b, sites| {
                b.iter(|| {
                    let r = pair_barriers(sites, &config);
                    r.pairings.len()
                });
            },
        );
    }
    group.finish();
}

fn bench_site_extraction(c: &mut Criterion) {
    // Window extraction for one mid-sized file.
    let spec = CorpusSpec {
        seed: 13,
        files: 1,
        patterns_per_file: 8,
        noise_per_file: 4,
        decoy_pairs: 0,
        far_decoy_pairs: 0,
        lone_per_file: 2,
        split_fraction: 0.0,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan::none(),
    };
    let corpus = generate(&spec);
    let f = &corpus.files[0];
    let parsed = ckit::parse_string(&f.name, &f.content).expect("parses");
    let config = AnalysisConfig::default();
    c.bench_function("site_extraction_one_file", |b| {
        b.iter(|| {
            let fa = ofence::sites::analyze_file(0, &parsed, &config);
            fa.sites.len()
        });
    });
}

fn bench_deviation_checks(c: &mut Criterion) {
    let sites = sites_for(300);
    let config = AnalysisConfig::default();
    let pairing = pair_barriers(&sites, &config);
    c.bench_function("deviation_checks", |b| {
        b.iter(|| {
            let devs = ofence::deviation::check_all(&sites, &pairing, &[], &config);
            devs.len()
        });
    });
}

criterion_group!(
    benches,
    bench_pairing_scaling,
    bench_site_extraction,
    bench_deviation_checks
);
criterion_main!(benches);
