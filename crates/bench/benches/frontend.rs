//! Front-end benchmarks: lexing, preprocessing, parsing, and CFG
//! construction throughput on generated kernel-like C.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ofence_corpus::{generate, BugPlan, CorpusSpec};

fn corpus_text() -> String {
    let spec = CorpusSpec {
        seed: 5,
        files: 20,
        patterns_per_file: 3,
        noise_per_file: 3,
        decoy_pairs: 2,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.0,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan::none(),
    };
    generate(&spec)
        .files
        .into_iter()
        .map(|f| f.content)
        .collect::<Vec<_>>()
        .join("\n")
}

fn bench_lexer(c: &mut Criterion) {
    let src = corpus_text();
    let mut group = c.benchmark_group("lexer");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("tokenize", |b| {
        b.iter(|| ckit::lexer::lex(&src).expect("lexes").len());
    });
    group.finish();
}

fn bench_preprocessor(c: &mut Criterion) {
    // A macro-heavy file exercising expansion and conditionals.
    let mut src = String::from(
        "#define BIT(n) (1 << (n))\n#define FLAGS (BIT(0) | BIT(3))\n#define MAX(a, b) ((a) > (b) ? (a) : (b))\n#define CONFIG_SMP 1\n",
    );
    for i in 0..200 {
        src.push_str(&format!(
            "#if defined(CONFIG_SMP) && {i} % 2 == 0\nint v{i} = MAX(FLAGS, {i});\n#else\nint w{i} = BIT(2);\n#endif\n"
        ));
    }
    let toks = ckit::lexer::lex(&src).expect("lexes");
    c.bench_function("preprocess_macro_heavy", |b| {
        b.iter(|| {
            ckit::pp::preprocess(toks.clone(), &ckit::PpConfig::default())
                .expect("preprocesses")
                .tokens
                .len()
        });
    });
}

fn bench_parser(c: &mut Criterion) {
    let src = corpus_text();
    let mut group = c.benchmark_group("parser");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("parse_translation_unit", |b| {
        b.iter(|| {
            let out = ckit::parse_string("bench.c", &src).expect("front end");
            assert!(out.errors.is_empty());
            out.unit.items.len()
        });
    });
    group.finish();
}

fn bench_cfg(c: &mut Criterion) {
    let src = corpus_text();
    let parsed = ckit::parse_string("bench.c", &src).expect("front end");
    c.bench_function("cfg_lowering", |b| {
        b.iter(|| {
            let lowered = cfgir::LoweredFile::lower(&parsed);
            lowered.cfgs.iter().map(|c| c.nodes.len()).sum::<usize>()
        });
    });
}

fn bench_pretty(c: &mut Criterion) {
    let src = corpus_text();
    let parsed = ckit::parse_string("bench.c", &src).expect("front end");
    c.bench_function("pretty_print", |b| {
        b.iter(|| ckit::pretty::print_unit(&parsed.unit).len());
    });
}

criterion_group!(
    benches,
    bench_lexer,
    bench_preprocessor,
    bench_parser,
    bench_cfg,
    bench_pretty
);
criterion_main!(benches);
