//! §6.1 benchmarks: full-corpus analysis time and incremental
//! re-analysis after a single-file edit, at several corpus scales.
//!
//! The paper's numbers on Linux 5.11: 8 minutes for the full 614-file
//! analysis on 16 cores, <30 s to update after editing one file. The
//! shape to reproduce: incremental ≪ full, and full scales roughly
//! linearly with file count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ofence::{AnalysisConfig, Engine};
use ofence_bench::harness::to_source_files;
use ofence_corpus::{generate, BugPlan, CorpusSpec};

fn spec_with_files(files: usize) -> CorpusSpec {
    CorpusSpec {
        seed: 7,
        files,
        patterns_per_file: 1,
        noise_per_file: 2,
        decoy_pairs: files / 40,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: BugPlan::none(),
    }
}

fn bench_full_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_analysis");
    group.sample_size(10);
    for files in [50usize, 150, 300, 600] {
        let corpus = generate(&spec_with_files(files));
        let sources = to_source_files(&corpus);
        group.bench_with_input(
            BenchmarkId::from_parameter(files),
            &sources,
            |b, sources| {
                b.iter(|| {
                    let mut engine = Engine::new(AnalysisConfig::default());
                    let result = engine.analyze(sources);
                    assert!(result.stats.pairings > 0);
                    result.stats.pairings
                });
            },
        );
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_one_file_edit");
    group.sample_size(10);
    for files in [150usize, 600] {
        let corpus = generate(&spec_with_files(files));
        let sources = to_source_files(&corpus);
        // Warm the cache once outside the measurement.
        let mut engine = Engine::new(AnalysisConfig::default());
        let _ = engine.analyze(&sources);
        let mut flip = false;
        group.bench_with_input(BenchmarkId::from_parameter(files), &(), |b, _| {
            b.iter(|| {
                let mut edited = sources.clone();
                // Alternate the edit so the cache entry really misses.
                flip = !flip;
                let suffix = if flip { "\n/* a */\n" } else { "\n/* b */\n" };
                let bumped = format!("{}{}", edited[files / 2].content, suffix);
                edited[files / 2].content = bumped.into();
                let result = engine.analyze_incremental(&edited);
                result.stats.pairings
            });
        });
    }
    group.finish();
}

fn bench_patch_synthesis(c: &mut Criterion) {
    // §6.2: patch generation cost for a bug-dense corpus.
    let mut spec = spec_with_files(100);
    spec.bugs = BugPlan {
        misplaced: 10,
        repeated_read: 5,
        wrong_type: 2,
        unneeded: 10,
        missing_barrier: 0,
    };
    let corpus = generate(&spec);
    let sources = to_source_files(&corpus);
    let mut engine = Engine::new(AnalysisConfig::default());
    let result = engine.analyze(&sources);
    assert!(!result.deviations.is_empty());
    c.bench_function("patch_synthesis_per_corpus", |b| {
        b.iter(|| {
            let mut count = 0;
            for d in &result.deviations {
                if ofence::patch::synthesize(d, &result.files[d.site.file]).is_some() {
                    count += 1;
                }
            }
            count
        });
    });
}

criterion_group!(
    benches,
    bench_full_analysis,
    bench_incremental,
    bench_patch_synthesis
);
criterion_main!(benches);
