//! Inter-procedural depth-sweep benchmark.
//!
//! ```text
//! ipa [--seed N] [--out PATH] [--runs N]
//! ```
//!
//! Measures what `--ipa-depth` costs on the kernel-shaped 1200-file
//! corpus (a small barrier-heavy core plus cross-file accessor chains
//! and hundreds of barrier-free filler files), cold and warm, at depths
//! 0 / 2 / 4. The acceptance bar is the **warm** path: summaries ride
//! the per-file cache, so on an edit-free re-run the composition pass
//! is the only depth-dependent work and must stay within 20% of the
//! depth-0 warm time. `warm_overhead_pct` is therefore computed from
//! the `compose` span (min over runs) against the depth-0 warm time —
//! end-to-end wall-clock deltas at this scale (tens of ms) are
//! dominated by scheduler noise, while the span isolates exactly the
//! work depth adds. Raw cold/warm times per depth are reported too.
//! Results land in `BENCH_ipa.json`.

use std::time::Instant;

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, CorpusSpec};

fn bench_spec(seed: u64) -> CorpusSpec {
    CorpusSpec {
        seed,
        files: 40,
        patterns_per_file: 1,
        noise_per_file: 2,
        decoy_pairs: 2,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 1160,
        cross_file_chains: 12,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: ofence_corpus::BugPlan::none(),
    }
}

struct DepthRow {
    depth: u32,
    cold_ms: u64,
    warm_us: u64,
    compose_us: u64,
    pairings: usize,
    ipa_assisted: u64,
    phase_us: std::collections::BTreeMap<String, u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut out = "BENCH_ipa.json".to_string();
    let mut runs = 3usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or(out);
                i += 2;
            }
            "--runs" => {
                runs = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            other => {
                eprintln!("ipa: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    eprintln!("generating corpus (seed={seed})...");
    let corpus = generate(&bench_spec(seed));
    let files: Vec<SourceFile> = corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect();

    let mut rows = Vec::new();
    for depth in [0u32, 2, 4] {
        let config = AnalysisConfig {
            ipa_depth: depth,
            ..AnalysisConfig::default()
        };
        // Cold: fresh engine each run, best-of-N against scheduler noise.
        let mut cold_ms = u64::MAX;
        for _ in 0..runs.max(1) {
            let mut engine = Engine::new(config.clone());
            let start = Instant::now();
            engine.analyze(&files);
            cold_ms = cold_ms.min(start.elapsed().as_millis() as u64);
        }
        // Warm: one engine, edit-free re-analysis — every file is an
        // in-memory cache hit, leaving composition as the marginal cost.
        let mut engine = Engine::new(config.clone());
        engine.analyze(&files);
        let mut warm_us = u64::MAX;
        let mut compose_us = u64::MAX;
        let mut pairings = 0;
        let mut ipa_assisted = 0;
        let mut phase_us = std::collections::BTreeMap::new();
        for _ in 0..runs.max(1) {
            let start = Instant::now();
            let result = engine.analyze(&files);
            warm_us = warm_us.min(start.elapsed().as_micros() as u64);
            assert_eq!(
                result.obs.count_of("engine_cache_hits") as usize,
                files.len(),
                "edit-free warm run should hit on every file"
            );
            pairings = result.pairing.pairings.len();
            ipa_assisted = result.obs.count_of("pair_ipa_assisted");
            compose_us = compose_us.min(result.stats.phase_us.get("compose").copied().unwrap_or(0));
            phase_us = result.stats.phase_us.clone();
        }
        let warm_ms = warm_us / 1000;
        println!(
            "depth {depth}: cold {cold_ms} ms, warm {warm_ms} ms \
             (compose {compose_us} us), {pairings} pairings \
             ({ipa_assisted} summary-assisted)"
        );
        rows.push(DepthRow {
            depth,
            cold_ms,
            warm_us,
            compose_us,
            pairings,
            ipa_assisted,
            phase_us,
        });
    }

    // The cross-file chains only pair once the depth reaches them.
    assert!(
        rows[1].pairings > rows[0].pairings,
        "depth 2 should pair the cross-file chains: {} vs {}",
        rows[1].pairings,
        rows[0].pairings
    );
    // The composition span is the only depth-dependent warm-path work;
    // relate its worst case to the depth-0 warm time. (Wall-clock warm
    // deltas are recorded per depth but are noise-bound at this scale.)
    let base = rows[0].warm_us.max(1) as f64;
    let worst = rows.iter().map(|r| r.compose_us).max().unwrap_or(0) as f64;
    let warm_overhead_pct = worst / base * 100.0;
    println!("warm overhead (compose span) vs depth 0: {warm_overhead_pct:.1}%");

    let payload = serde_json::json!({
        "seed": seed,
        "runs": runs,
        "files": files.len(),
        "chains": 12,
        "chain_depth": 2,
        "depths": rows.iter().map(|r| serde_json::json!({
            "depth": r.depth,
            "cold_ms": r.cold_ms,
            "warm_us": r.warm_us,
            "compose_us": r.compose_us,
            "pairings": r.pairings,
            "ipa_assisted": r.ipa_assisted,
            "warm_phase_us": r.phase_us,
        })).collect::<Vec<_>>(),
        "warm_overhead_pct": warm_overhead_pct,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialize ipa report");
    std::fs::write(&out, text).expect("write ipa report");
    eprintln!("wrote {out}");
}
