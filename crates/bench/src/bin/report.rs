//! Regenerate every table and figure of the OFence paper's evaluation.
//!
//! ```text
//! report [--scale small|paper] [--seed N] [--json PATH] [table1|table2|table3|fig6|fig7|runtime|patches|coverage|missing|reread|all]
//! ```
//!
//! Each section prints the paper's artifact next to the measured value so
//! the shape comparison is immediate. `--json` additionally dumps the raw
//! numbers for archival (EXPERIMENTS.md is generated from this output).

use ofence::{AnalysisConfig, DeviationKind, Engine, SourceFile};
use ofence_bench::harness;
use ofence_corpus::{generate, BugKind, Corpus, CorpusSpec};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "paper".to_string();
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut sections: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--json" => {
                json_path = args.get(i + 1).cloned();
                i += 2;
            }
            s => {
                sections.push(s.trim_start_matches("--").to_string());
                i += 1;
            }
        }
    }
    if sections.is_empty() {
        sections.push("all".into());
    }
    let want = |name: &str| sections.iter().any(|s| s == name || s == "all");

    let spec = match scale.as_str() {
        "small" => CorpusSpec::small(seed),
        _ => CorpusSpec::paper_scale(seed),
    };
    eprintln!("generating corpus (scale={scale}, seed={seed})...");
    let corpus = generate(&spec);
    eprintln!(
        "corpus: {} files, {} expected pairings, {} injected bugs",
        corpus.files.len(),
        corpus.manifest.expected_pairings.len(),
        corpus.manifest.bugs.len()
    );

    let mut json = serde_json::Map::new();
    json.insert("scale".into(), scale.clone().into());
    json.insert("seed".into(), seed.into());

    if want("table1") {
        table1(&mut json);
    }
    if want("table2") {
        table2(&mut json);
    }
    let needs_run = ["table3", "fig7", "runtime", "patches", "coverage"]
        .iter()
        .any(|s| want(s));
    if needs_run {
        let (result, summary) = harness::evaluate_corpus(&corpus, AnalysisConfig::default());
        if want("table3") {
            table3(&result, &corpus, &mut json);
        }
        if want("fig7") {
            fig7(&result, &mut json);
        }
        if want("runtime") {
            runtime(&corpus, &result, &mut json);
        }
        if want("patches") {
            patches(&result, &mut json);
        }
        if want("coverage") {
            coverage(&result, &summary, &mut json);
        }
    }
    if want("fig6") {
        fig6(&corpus, &mut json);
    }
    if want("missing") {
        missing(&corpus, &mut json);
    }
    if want("reread") {
        reread(&corpus, &mut json);
    }

    if let Some(path) = json_path {
        let text = serde_json::to_string_pretty(&serde_json::Value::Object(json))
            .expect("serialize report");
        std::fs::write(&path, text).expect("write json report");
        eprintln!("wrote {path}");
    }
}

fn header(title: &str) {
    println!("\n==== {title}");
}

/// Table 1: the eight barrier primitives are recognized and classified.
fn table1(json: &mut serde_json::Map<String, serde_json::Value>) {
    header("Table 1 — barriers used by Linux (recognized primitives)");
    println!(
        "{:<28} {:<11} {:<10} Description",
        "Primitive", "write-side", "read-side"
    );
    let mut rows = Vec::new();
    for kind in kmodel::BarrierKind::ALL {
        println!(
            "{:<28} {:<11} {:<10} {}",
            format!("{}()", kind.name()),
            kind.is_write_side(),
            kind.is_read_side(),
            kind.description()
        );
        rows.push(serde_json::json!({
            "primitive": kind.name(),
            "orders_reads": kind.orders_reads(),
            "orders_writes": kind.orders_writes(),
        }));
    }
    json.insert("table1".into(), rows.into());
}

/// Table 2: barrier-semantics classification of atomics/bitops/wake-ups.
fn table2(json: &mut serde_json::Map<String, serde_json::Value>) {
    header("Table 2 — functions with/without barrier semantics");
    let rows = [
        ("atomic_inc", false),
        ("atomic_inc_and_test", true),
        ("set_bit", false),
        ("test_and_set_bit", true),
        ("wake_up_process", true),
    ];
    println!("{:<26} {:<18} paper", "Primitive", "measured-barrier");
    let mut out = Vec::new();
    for (name, paper) in rows {
        let measured = kmodel::has_full_barrier_semantics(name);
        println!("{:<26} {:<18} {}", format!("{name}()"), measured, paper);
        assert_eq!(measured, paper, "Table 2 row mismatch for {name}");
        out.push(serde_json::json!({"primitive": name, "barrier": measured}));
    }
    json.insert("table2".into(), out.into());
}

/// Table 3: bug breakdown on the injected corpus.
fn table3(
    result: &ofence::AnalysisResult,
    corpus: &Corpus,
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    header("Table 3 — breakdown of bugs found (paper: 8 / 3 / 1)");
    let (bugs, _) = harness::found_records(result);
    let mut found: BTreeMap<String, usize> = BTreeMap::new();
    for b in &bugs {
        // Count only findings that match an injection (true positives).
        let hit = corpus.manifest.bugs.iter().any(|inj| {
            inj.kind == b.kind
                && inj.function == b.function
                && (inj.strukt.is_empty() || inj.strukt == b.strukt)
        });
        if hit {
            *found.entry(format!("{:?}", b.kind)).or_default() += 1;
        }
    }
    println!(
        "{:<46} {:>8} {:>8} {:>8}",
        "Description", "injected", "found", "paper"
    );
    let rows = [
        (BugKind::Misplaced, "Misplaced memory access", 8usize),
        (
            BugKind::RepeatedRead,
            "Racy variable re-read after the read barrier",
            3,
        ),
        (
            BugKind::WrongBarrierType,
            "Read barrier used instead of a write barrier",
            1,
        ),
    ];
    let mut out = Vec::new();
    for (kind, desc, paper) in rows {
        let injected = corpus.manifest.count_bugs(kind);
        let f = found
            .get(&format!("{kind:?}"))
            .copied()
            .unwrap_or(0)
            .min(injected);
        println!("{desc:<46} {injected:>8} {f:>8} {paper:>8}");
        out.push(serde_json::json!({
            "class": desc, "injected": injected, "found": f, "paper": paper
        }));
    }
    json.insert("table3".into(), out.into());
}

/// Figure 6: pairings vs statements analyzed around write barriers, with
/// the caption's companion metric: incorrect (decoy) pairings.
fn fig6(corpus: &Corpus, json: &mut serde_json::Map<String, serde_json::Value>) {
    header("Figure 6 — pairings vs write-barrier exploration window");
    let windows = [1u32, 2, 3, 4, 5, 7, 10, 15, 20];
    println!(
        "{:<8} {:>9} {:>10}  (paper: plateau at ~5; incorrect pairings rise beyond)",
        "window", "correct", "incorrect"
    );
    let mut out = Vec::new();
    let mut correct_at_5 = 0usize;
    let mut correct_max = 1usize;
    for w in windows {
        let config = AnalysisConfig {
            write_window: w,
            ..Default::default()
        };
        let (_, summary) = harness::evaluate_corpus(corpus, config);
        let correct = summary.pairings_found;
        let incorrect = summary.decoy_pairings_found;
        let bar = "#".repeat(correct * 40 / summary.pairings_expected.max(1));
        println!("{w:<8} {correct:>9} {incorrect:>10}  {bar}");
        out.push(serde_json::json!({
            "window": w, "correct": correct, "incorrect": incorrect
        }));
        if w == 5 {
            correct_at_5 = correct;
        }
        correct_max = correct_max.max(correct);
    }
    println!(
        "plateau check: window=5 reaches {:.0}% of the maximum correct-pairing count",
        100.0 * correct_at_5 as f64 / correct_max as f64
    );
    json.insert("fig6".into(), out.into());
}

/// Figure 7: distance distribution of read-side accesses.
fn fig7(result: &ofence::AnalysisResult, json: &mut serde_json::Map<String, serde_json::Value>) {
    header("Figure 7 — distance between read barriers and read shared objects");
    let h = result.read_distance_histogram();
    let buckets = [(1u32, 1u32), (2, 2), (3, 5), (6, 10), (11, 20), (21, 50)];
    let total = h.total().max(1);
    let mut out = Vec::new();
    for (lo, hi) in buckets {
        let count: usize = (lo..=hi)
            .map(|d| h.counts.get(d as usize).copied().unwrap_or(0))
            .sum();
        let pct = 100.0 * count as f64 / total as f64;
        let bar = "#".repeat((pct / 2.0) as usize);
        println!("{lo:>5}-{hi:<5} {count:>7} ({pct:>5.1}%)  {bar}");
        out.push(serde_json::json!({"lo": lo, "hi": hi, "count": count}));
    }
    println!(
        "cumulative within 5 statements: {:.1}% (paper: reads spread out, tail to ~50)",
        100.0 * h.cumulative_at(5)
    );
    let wh = result.write_distance_histogram();
    println!(
        "write-side within 5 statements: {:.1}% (paper Fig. 6: writes hug the barrier)",
        100.0 * wh.cumulative_at(5)
    );
    json.insert("fig7".into(), out.into());
}

/// §6.1: runtime of the full analysis and of incremental re-analysis,
/// with the per-phase breakdown from the run's own spans (the engine no
/// longer needs external stopwatches).
fn runtime(
    corpus: &Corpus,
    result: &ofence::AnalysisResult,
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    header("§6.1 — analysis runtime");
    println!(
        "full corpus ({} files): {} ms  (paper: 8 min for 614 kernel files on 16 cores)",
        corpus.files.len(),
        result.stats.elapsed_ms
    );
    for phase in ofence::report::PHASES {
        if let Some(us) = result.stats.phase_us.get(phase) {
            println!("  {phase:<12} {:.1} ms", *us as f64 / 1000.0);
        }
    }
    if !result.stats.slowest_files.is_empty() {
        println!("  slowest files:");
        for (f, us) in &result.stats.slowest_files {
            println!("    {f} ({:.1} ms)", *us as f64 / 1000.0);
        }
    }
    // Incremental: re-analyze after touching one file.
    let mut files = harness::to_source_files(corpus);
    let mut engine = Engine::new(AnalysisConfig::default());
    let _ = engine.analyze(&files);
    let touched = files.len() / 2;
    files[touched].content = format!("{}\n/* touched */\n", files[touched].content).into();
    let inc = engine.analyze_incremental(&files);
    println!(
        "single-file incremental:  {} ms  (paper: <30 s per file)",
        inc.stats.elapsed_ms
    );
    json.insert(
        "runtime".into(),
        serde_json::json!({
            "full_ms": result.stats.elapsed_ms,
            "incremental_ms": inc.stats.elapsed_ms,
            "files": corpus.files.len(),
            "phase_us": result.stats.phase_us,
            "slowest_files": result.stats.slowest_files,
            "incremental_cache_hits": inc.obs.counters.get("engine_cache_hits").copied().unwrap_or(0),
        }),
    );
}

/// §6.2/6.3: patches generated, verified by re-analysis.
fn patches(result: &ofence::AnalysisResult, json: &mut serde_json::Map<String, serde_json::Value>) {
    header("§6.2/§6.3 — generated patches (verified: checker no longer fires)");
    let mut per_class: BTreeMap<&str, usize> = BTreeMap::new();
    let mut verified = 0usize;
    let mut failed = 0usize;
    for (dev, patch) in result.deviations.iter().filter_map(|d| {
        let fa = &result.files[d.site.file];
        ofence::patch::synthesize(d, fa).map(|p| (d, p))
    }) {
        let class = match &dev.kind {
            DeviationKind::Misplaced { .. } => "misplaced",
            DeviationKind::RepeatedRead { .. } => "re-read",
            DeviationKind::WrongBarrierType { .. } => "wrong-type",
            DeviationKind::UnneededBarrier { .. } => "unneeded",
            DeviationKind::MissingOnce { .. } => "annotation",
            DeviationKind::MissingBarrier { .. } => "missing-fence",
        };
        *per_class.entry(class).or_default() += 1;
        // Verify: apply and re-analyze the single file.
        let fa = &result.files[dev.site.file];
        match ofence::apply_edits(&fa.source, &patch.edits) {
            Some(newsrc) => {
                let mut engine = Engine::new(AnalysisConfig::default());
                let r = engine.analyze(&[SourceFile::new(fa.name.clone(), newsrc)]);
                let still = r.deviations.iter().any(|d2| {
                    d2.site.function == dev.site.function
                        && std::mem::discriminant(&d2.kind) == std::mem::discriminant(&dev.kind)
                });
                if still {
                    failed += 1;
                } else {
                    verified += 1;
                }
            }
            None => failed += 1,
        }
    }
    for (class, count) in &per_class {
        println!("{class:<12} {count}");
    }
    println!("verified by re-analysis: {verified}; not eliminated: {failed}");
    println!(
        "annotation patches (§7): {}",
        result.annotation_patches.len()
    );
    json.insert(
        "patches".into(),
        serde_json::json!({
            "per_class": per_class.iter().map(|(k, v)| (k.to_string(), *v)).collect::<BTreeMap<_,_>>(),
            "verified": verified,
            "failed": failed,
            "annotations": result.annotation_patches.len(),
        }),
    );
}

/// Dataflow extension: missing-barrier detection — recall on injected
/// fence-less readers, false positives under the outlier rule and
/// without it, and machine verification of the synthesized fences.
fn missing(corpus: &Corpus, json: &mut serde_json::Map<String, serde_json::Value>) {
    header("Missing-barrier detector (dataflow extension)");
    let config = AnalysisConfig {
        detect_missing: true,
        ..Default::default()
    };
    let result = harness::analyze_corpus(corpus, config.clone());
    let injected = corpus.manifest.count_bugs(BugKind::MissingBarrier);
    let devs: Vec<&ofence::Deviation> = result
        .deviations
        .iter()
        .filter(|d| matches!(d.kind, DeviationKind::MissingBarrier { .. }))
        .collect();
    let detected = corpus
        .manifest
        .bugs
        .iter()
        .filter(|b| {
            b.kind == BugKind::MissingBarrier && devs.iter().any(|d| d.site.function == b.function)
        })
        .count();
    let fps = devs
        .iter()
        .filter(|d| {
            !corpus
                .manifest
                .bugs
                .iter()
                .any(|b| b.kind == BugKind::MissingBarrier && b.function == d.site.function)
        })
        .count();
    // Machine verification: insert the fence, re-analyze, finding gone.
    let mut verified = 0usize;
    for d in &devs {
        let fa = &result.files[d.site.file];
        let Some(patch) = ofence::patch::synthesize(d, fa) else {
            continue;
        };
        let Some(fixed) = ofence::apply_edits(&fa.source, &patch.edits) else {
            continue;
        };
        let r2 = Engine::new(config.clone()).analyze(&[SourceFile::new(fa.name.clone(), fixed)]);
        if !r2.deviations.iter().any(|d2| {
            matches!(d2.kind, DeviationKind::MissingBarrier { .. })
                && d2.site.function == d.site.function
        }) {
            verified += 1;
        }
    }
    let no_outlier = harness::analyze_corpus(
        corpus,
        AnalysisConfig {
            detect_missing: true,
            outlier_rule: false,
            ..Default::default()
        },
    );
    let fps_no_outlier = no_outlier
        .deviations
        .iter()
        .filter(|d| {
            matches!(d.kind, DeviationKind::MissingBarrier { .. })
                && !corpus
                    .manifest
                    .bugs
                    .iter()
                    .any(|b| b.kind == BugKind::MissingBarrier && b.function == d.site.function)
        })
        .count();
    let recall = if injected > 0 {
        detected as f64 / injected as f64
    } else {
        0.0
    };
    println!("injected fence-less readers:   {injected}");
    println!(
        "detected:                      {detected} ({:.0}% recall, target >= 90%)",
        recall * 100.0
    );
    println!("false positives (outlier on):  {fps}");
    println!("false positives (outlier off): {fps_no_outlier}");
    println!("patches verified by re-analysis: {verified}/{}", devs.len());
    json.insert(
        "missing".into(),
        serde_json::json!({
            "injected": injected,
            "detected": detected,
            "recall": recall,
            "false_positives": fps,
            "false_positives_no_outlier": fps_no_outlier,
            "patches_verified": verified,
        }),
    );
}

/// Dataflow extension: benign re-reads — FP comparison between the
/// bounded-window heuristic and the reaching-definitions check.
fn reread(corpus: &Corpus, json: &mut serde_json::Map<String, serde_json::Value>) {
    header("Re-read checker: window heuristic vs reaching definitions");
    let count = |dataflow: bool| {
        let result = harness::analyze_corpus(
            corpus,
            AnalysisConfig {
                dataflow_reread: dataflow,
                ..Default::default()
            },
        );
        let (bugs, _) = harness::found_records(&result);
        let rereads: Vec<_> = bugs
            .iter()
            .filter(|b| b.kind == BugKind::RepeatedRead)
            .collect();
        let hits = corpus
            .manifest
            .bugs
            .iter()
            .filter(|inj| {
                inj.kind == BugKind::RepeatedRead
                    && rereads.iter().any(|b| b.function == inj.function)
            })
            .count();
        let fps = rereads
            .iter()
            .filter(|b| {
                !corpus
                    .manifest
                    .bugs
                    .iter()
                    .any(|inj| inj.kind == BugKind::RepeatedRead && inj.function == b.function)
            })
            .count();
        (hits, fps)
    };
    let (window_hits, window_fps) = count(false);
    let (dataflow_hits, dataflow_fps) = count(true);
    let injected = corpus.manifest.count_bugs(BugKind::RepeatedRead);
    println!("injected racy re-reads:  {injected}");
    println!("window heuristic:        {window_hits} found, {window_fps} false positives");
    println!("reaching definitions:    {dataflow_hits} found, {dataflow_fps} false positives");
    println!(
        "benign re-read decoys suppressed by dataflow: {}",
        window_fps.saturating_sub(dataflow_fps)
    );
    json.insert(
        "reread".into(),
        serde_json::json!({
            "injected": injected,
            "window": {"found": window_hits, "false_positives": window_fps},
            "dataflow": {"found": dataflow_hits, "false_positives": dataflow_fps},
        }),
    );
}

/// §6.4: pairing count, coverage, false positives vs ground truth.
fn coverage(
    result: &ofence::AnalysisResult,
    summary: &ofence_corpus::EvalSummary,
    json: &mut serde_json::Map<String, serde_json::Value>,
) {
    header("§6.4 — pairings, false positives, coverage");
    println!(
        "pairings found:          {} (paper: 456 in 614 files)",
        result.stats.pairings
    );
    println!(
        "barrier coverage:        {:.1}% (paper: ~50%)",
        result.stats.coverage * 100.0
    );
    println!(
        "incorrect pairings:      {} (paper: 15)",
        summary.decoy_pairings_found
    );
    println!(
        "bug recall:              {:.1}% ({} of {})",
        summary.bug_recall * 100.0,
        summary.bugs_found,
        summary.bugs_injected
    );
    println!(
        "incorrect patches (FPs): {} (paper: 12)",
        summary.bug_false_positives
    );
    let ordering_real: usize = summary
        .per_kind
        .iter()
        .filter(|(k, _, _)| k != "UnneededBarrier")
        .map(|(_, _, f)| f)
        .sum();
    let fp_ratio = summary.bug_false_positives as f64
        / (summary.bug_false_positives + ordering_real).max(1) as f64;
    println!(
        "measured FP ratio on ordering patches: {:.0}% (paper: 50%)",
        fp_ratio * 100.0
    );
    println!(
        "unneeded barriers found: {} (paper: 53)",
        result
            .stats
            .deviations_by_kind
            .get("unneeded barrier")
            .copied()
            .unwrap_or(0)
    );
    json.insert(
        "coverage".into(),
        serde_json::json!({
            "pairings": result.stats.pairings,
            "coverage": result.stats.coverage,
            "incorrect_pairings": summary.decoy_pairings_found,
            "bug_recall": summary.bug_recall,
            "incorrect_patches": summary.bug_false_positives,
            "fp_ratio": fp_ratio,
        }),
    );
}
