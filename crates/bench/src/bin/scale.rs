//! Monorepo-scale throughput benchmark.
//!
//! ```text
//! scale [--tiers 1200,12k[,100k]] [--seed N] [--out BENCH_scale.json]
//!       [--runs N] [--baseline FILE] [--perf-ledger FILE]
//! ```
//!
//! Measures cold and warm files-per-second at increasing corpus sizes
//! (1.2k / 12k / 100k synthetic files, filler-dominated like a real
//! kernel tree). Cold analyzes a fresh corpus with an empty cache; warm
//! re-analyzes after a one-file edit with the sharded disk cache loaded
//! in a fresh engine (a new process image), so warm cost scales with the
//! edit set, not the corpus. Per-tier phase timings, cache economics, and
//! worker utilization (busy/idle/steals) come from the run's obs
//! snapshot, so the report shows *where* the time goes, not just totals.
//!
//! `--baseline FILE` merges a previously recorded BENCH_scale.json (e.g.
//! one captured before a refactor) and reports cold/warm speedups per
//! tier against it. `--perf-ledger FILE` appends the best cold and warm
//! 1.2k-tier runs as [`ofence::perf`] records for `ofence perf --gate`.

use std::time::Instant;

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, inject_edit, CorpusSpec};

/// Phase span names folded into the per-tier breakdown.
const PHASES: &[&str] = &[
    "parse",
    "lex",
    "pp",
    "parse-tokens",
    "cfg",
    "extract",
    "pair",
    "check",
    "patch",
    "annotate",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tiers = vec!["1200".to_string(), "12k".to_string()];
    let mut seed = 42u64;
    let mut out = "BENCH_scale.json".to_string();
    let mut runs = 2usize;
    let mut baseline: Option<String> = None;
    let mut perf_ledger: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiers" => {
                tiers = args
                    .get(i + 1)
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or(tiers);
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or(out);
                i += 2;
            }
            "--runs" => {
                runs = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(2);
                i += 2;
            }
            "--baseline" => {
                baseline = args.get(i + 1).cloned();
                i += 2;
            }
            "--perf-ledger" => {
                perf_ledger = args.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("scale: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let config = AnalysisConfig::default();
    let mut tier_reports: Vec<serde_json::Value> = Vec::new();
    let mut ledger_records = Vec::new();

    for tier in &tiers {
        let spec = CorpusSpec::tier(tier, seed).unwrap_or_else(|| {
            eprintln!("scale: unknown tier `{tier}` (expected 1200, 12k, or 100k)");
            std::process::exit(2);
        });
        eprintln!("tier {tier}: generating corpus...");
        let gen_start = Instant::now();
        let mut corpus = generate(&spec);
        let gen_ms = gen_start.elapsed().as_millis() as u64;
        let n_files = corpus.files.len();
        let cold_files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();

        let cache_dir =
            std::env::temp_dir().join(format!("ofence-scale-{tier}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);

        // Cold: fresh engine, empty cache. Best-of-N.
        let mut cold_ms = u64::MAX;
        let mut best_cold = None;
        for _ in 0..runs.max(1) {
            let mut engine = Engine::new(config.clone());
            let start = Instant::now();
            let result = engine.analyze(&cold_files);
            let elapsed = start.elapsed().as_millis() as u64;
            assert_eq!(result.obs.count_of("engine_cache_hits"), 0);
            if elapsed < cold_ms {
                cold_ms = elapsed;
                best_cold = Some((result, engine));
            }
        }
        let (cold_result, mut cold_engine) = best_cold.expect("at least one cold run");
        let save_start = Instant::now();
        let saved = cold_engine.save_disk_cache(&cache_dir).expect("save cache");
        let save_ms = save_start.elapsed().as_millis() as u64;
        // Extract everything the report needs from the cold run, then
        // drop it: a real warm run is a fresh process, and keeping the
        // full cold result + engine cache alive while the warm runs
        // parse the on-disk shards measures allocator pressure the
        // warm path would never see.
        let mut cold_phases = serde_json::Map::new();
        for p in PHASES {
            let us = cold_result.obs.total_us_of(p);
            if us > 0 {
                cold_phases.insert(p.to_string(), serde_json::Value::from(us));
            }
        }
        let cold_counts: std::collections::HashMap<&str, u64> =
            ["workers", "worker_busy_us", "worker_idle_us", "pool_steals"]
                .into_iter()
                .map(|c| (c, cold_result.obs.count_of(c)))
                .collect();
        let cold_record = ofence::perf::record_of(&cold_result, &config, None);
        drop(cold_result);
        drop(cold_engine);
        drop(cold_files);

        // One edit, then warm runs in fresh engines (new process images).
        let edited = inject_edit(&mut corpus, seed ^ 1);
        let warm_files: Vec<SourceFile> = corpus
            .files
            .iter()
            .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
            .collect();
        let mut warm_ms = u64::MAX;
        let mut load_ms = 0u64;
        let mut best_warm = None;
        for _ in 0..runs.max(1) {
            let mut engine = Engine::new(config.clone());
            let start = Instant::now();
            engine.load_disk_cache(&cache_dir);
            let this_load = start.elapsed().as_millis() as u64;
            let result = engine.analyze(&warm_files);
            let elapsed = start.elapsed().as_millis() as u64;
            assert_eq!(
                result.obs.count_of("engine_files_analyzed"),
                1,
                "warm run must re-analyze exactly the edited file"
            );
            if elapsed < warm_ms {
                warm_ms = elapsed;
                load_ms = this_load;
                best_warm = Some(result);
            }
        }
        let warm_result = best_warm.expect("at least one warm run");
        let _ = std::fs::remove_dir_all(&cache_dir);

        let cold_fps = n_files as f64 * 1000.0 / cold_ms.max(1) as f64;
        let warm_fps = n_files as f64 * 1000.0 / warm_ms.max(1) as f64;
        eprintln!(
            "tier {tier}: {n_files} files — cold {cold_ms} ms ({cold_fps:.0} files/s), \
             warm {warm_ms} ms ({warm_fps:.0} files/s, load {load_ms} ms), save {save_ms} ms"
        );

        tier_reports.push(serde_json::json!({
            "tier": tier,
            "files": n_files,
            "gen_ms": gen_ms,
            "cold_ms": cold_ms,
            "cold_files_per_sec": cold_fps,
            "warm_ms": warm_ms,
            "warm_files_per_sec": warm_fps,
            "cache_load_ms": load_ms,
            "cache_save_ms": save_ms,
            "cache_entries": saved,
            "edited_file": edited,
            "warm_files_reanalyzed": warm_result.obs.count_of("engine_files_analyzed"),
            "cold_phase_us": serde_json::Value::Object(cold_phases),
            "workers": cold_counts["workers"],
            "worker_busy_us": cold_counts["worker_busy_us"],
            "worker_idle_us": cold_counts["worker_idle_us"],
            "pool_steals": cold_counts["pool_steals"],
            "shard_load_us": warm_result.obs.count_of("shard_load_us"),
        }));

        if tier == "1200" {
            ledger_records.push(ofence::perf::record_of(&warm_result, &config, None));
            ledger_records.push(cold_record);
        }
    }

    // Merge a pre-recorded baseline (if any) and compute per-tier speedups.
    let mut payload = serde_json::json!({
        "seed": seed,
        "runs": runs,
        "tiers": tier_reports.clone(),
    });
    if let Some(path) = baseline {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(base) = serde_json::from_str::<serde_json::Value>(&text) {
                let mut speedups: Vec<serde_json::Value> = Vec::new();
                if let Some(base_tiers) = base["tiers"].as_array() {
                    for t in &tier_reports {
                        let tier = t["tier"].as_str().unwrap_or_default();
                        if let Some(b) =
                            base_tiers.iter().find(|b| b["tier"].as_str() == Some(tier))
                        {
                            let cold = t["cold_files_per_sec"].as_f64().unwrap_or(0.0)
                                / b["cold_files_per_sec"].as_f64().unwrap_or(f64::INFINITY);
                            let warm = t["warm_files_per_sec"].as_f64().unwrap_or(0.0)
                                / b["warm_files_per_sec"].as_f64().unwrap_or(f64::INFINITY);
                            eprintln!("tier {tier}: cold {cold:.2}x, warm {warm:.2}x vs baseline");
                            speedups.push(serde_json::json!({
                                "tier": tier,
                                "cold_speedup": cold,
                                "warm_speedup": warm,
                            }));
                        }
                    }
                }
                if let serde_json::Value::Object(ref mut m) = payload {
                    m.insert("baseline".to_string(), base);
                    m.insert(
                        "speedup_vs_baseline".to_string(),
                        serde_json::Value::Array(speedups),
                    );
                }
            }
        }
    }

    let text = serde_json::to_string_pretty(&payload).expect("serialize scale report");
    std::fs::write(&out, text).expect("write scale report");
    eprintln!("wrote {out}");

    if let Some(ledger) = perf_ledger {
        let path = std::path::Path::new(&ledger);
        for record in &ledger_records {
            ofence::perf::append_to(path, record).expect("append perf ledger");
        }
        eprintln!("appended {} records to {ledger}", ledger_records.len());
    }
}
