//! Per-phase pipeline breakdown benchmark.
//!
//! ```text
//! phases [--scale small|paper] [--seed N] [--out PATH]
//! ```
//!
//! Runs one full analysis over the synthetic corpus and dumps the run's
//! own observability data — per-phase wall-clock (parse / cfg / extract /
//! pair / check / …), decision counters, and the slowest files — to
//! `BENCH_phases.json`. Unlike `report`, nothing here is measured with an
//! external stopwatch: every number comes from the engine's span
//! recorder, so this doubles as a regression check that instrumentation
//! stays cheap (compare `analyze` against the phase sum).

use ofence::AnalysisConfig;
use ofence_bench::harness;
use ofence_corpus::{generate, CorpusSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "small".to_string();
    let mut seed = 42u64;
    let mut out = "BENCH_phases.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or(out);
                i += 2;
            }
            other => {
                eprintln!("phases: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    let spec = match scale.as_str() {
        "paper" => CorpusSpec::paper_scale(seed),
        _ => CorpusSpec::small(seed),
    };
    eprintln!("generating corpus (scale={scale}, seed={seed})...");
    let corpus = generate(&spec);
    let result = harness::analyze_corpus(&corpus, AnalysisConfig::default());

    println!(
        "analyzed {} files in {} ms",
        corpus.files.len(),
        result.stats.elapsed_ms
    );
    let phase_sum: u64 = result.stats.phase_us.values().sum();
    for phase in ofence::report::PHASES {
        if let Some(us) = result.stats.phase_us.get(phase) {
            let pct = 100.0 * *us as f64 / phase_sum.max(1) as f64;
            println!(
                "  {phase:<12} {:>10.1} ms  ({pct:>4.1}%)",
                *us as f64 / 1000.0
            );
        }
    }
    println!("slowest files:");
    for (f, us) in &result.stats.slowest_files {
        println!("  {f} ({:.1} ms)", *us as f64 / 1000.0);
    }

    let payload = serde_json::json!({
        "scale": scale,
        "seed": seed,
        "files": corpus.files.len(),
        "elapsed_ms": result.stats.elapsed_ms,
        "phase_us": result.stats.phase_us,
        "slowest_files": result.stats.slowest_files,
        "counters": result.obs.counters,
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialize phases report");
    std::fs::write(&out, text).expect("write phases report");
    eprintln!("wrote {out}");
}
