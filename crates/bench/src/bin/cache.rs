//! Warm-vs-cold disk-cache benchmark.
//!
//! ```text
//! cache [--scale small|paper|bench] [--seed N] [--out PATH] [--runs N]
//!       [--perf-ledger FILE] [--noise N]
//! ```
//!
//! Models the edit-compile loop the persistent cache exists for: analyze
//! a corpus cold, flush the per-file cache to disk, edit **one** file,
//! then re-analyze in a fresh process image (new `Engine` + cache load
//! from disk). The warm run re-parses only the edited file; everything
//! else is a content-hash hit. Results land in `BENCH_cache.json`.
//!
//! The default `bench` scale mirrors a kernel tree's shape: a small core
//! of barrier-heavy files plus hundreds of barrier-free ones, so
//! per-file frontend work (parse / cfg / extract) dominates the global
//! pairing phases and the warm speedup is visible. On `paper` scale the
//! global phases are ~60% of the runtime and cap the speedup near 2×.
//!
//! `--perf-ledger FILE` appends the best cold and best warm run as
//! [`ofence::perf`] records, so repeated bench invocations build the
//! baseline `ofence perf --gate` judges against. `--noise N` overrides
//! the statements-per-file count (default 2) without changing the file
//! count — CI uses it to inject a genuine slowdown on an otherwise
//! comparable corpus and prove the gate trips.

use std::time::Instant;

use ofence::{AnalysisConfig, Engine, SourceFile};
use ofence_corpus::{generate, inject_edit, CorpusSpec};

fn bench_spec(seed: u64, noise: usize) -> CorpusSpec {
    CorpusSpec {
        seed,
        files: 40,
        patterns_per_file: 1,
        noise_per_file: noise,
        decoy_pairs: 2,
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 1160,
        cross_file_chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        bugs: ofence_corpus::BugPlan::none(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = "bench".to_string();
    let mut seed = 42u64;
    let mut out = "BENCH_cache.json".to_string();
    let mut runs = 3usize;
    let mut perf_ledger: Option<String> = None;
    let mut noise = 2usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--seed" => {
                seed = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(42);
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or(out);
                i += 2;
            }
            "--runs" => {
                runs = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(3);
                i += 2;
            }
            "--perf-ledger" => {
                perf_ledger = args.get(i + 1).cloned();
                i += 2;
            }
            "--noise" => {
                noise = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(noise);
                i += 2;
            }
            other => {
                eprintln!("cache: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    let spec = match scale.as_str() {
        "paper" => CorpusSpec::paper_scale(seed),
        "small" => CorpusSpec::small(seed),
        _ => bench_spec(seed, noise),
    };
    eprintln!("generating corpus (scale={scale}, seed={seed})...");
    let mut corpus = generate(&spec);
    let cold_files: Vec<SourceFile> = corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect();

    let cache_dir = std::env::temp_dir().join(format!("ofence-bench-cache-{}", std::process::id()));
    let config = AnalysisConfig::default();

    // Cold: fresh engine, nothing on disk. Best-of-N to damp scheduler
    // noise; the cache is saved from the last cold run.
    let mut cold_ms = u64::MAX;
    let mut saved_entries = 0;
    let mut best_cold = None;
    for _ in 0..runs.max(1) {
        let mut engine = Engine::new(config.clone());
        let start = Instant::now();
        let result = engine.analyze(&cold_files);
        let elapsed = start.elapsed().as_millis() as u64;
        assert_eq!(result.obs.count_of("engine_cache_hits"), 0);
        saved_entries = engine.save_disk_cache(&cache_dir).expect("save cache");
        if elapsed < cold_ms {
            cold_ms = elapsed;
            best_cold = Some(result);
        }
    }

    // One edit, like a developer touching a single file between runs.
    let edited = inject_edit(&mut corpus, seed ^ 1);
    let warm_files: Vec<SourceFile> = corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect();

    // Warm: fresh engine per run (a new process image), cache loaded from
    // disk each time — load cost is part of the measured warm time.
    let mut warm_ms = u64::MAX;
    let mut hits = 0;
    let mut loads = 0;
    let mut best_warm = None;
    for _ in 0..runs.max(1) {
        let mut engine = Engine::new(config.clone());
        let start = Instant::now();
        engine.load_disk_cache(&cache_dir);
        let result = engine.analyze(&warm_files);
        let elapsed = start.elapsed().as_millis() as u64;
        hits = result.obs.count_of("engine_cache_hits");
        loads = result.obs.count_of("cache_loads");
        if elapsed < warm_ms {
            warm_ms = elapsed;
            best_warm = Some(result);
        }
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    assert_eq!(
        hits as usize,
        corpus.files.len() - 1,
        "warm run should hit on every file but the edited one"
    );
    let speedup = cold_ms.max(1) as f64 / warm_ms.max(1) as f64;
    println!(
        "cold {} ms, warm {} ms (one file edited) — {:.1}x speedup",
        cold_ms, warm_ms, speedup
    );
    println!(
        "{} files, {} cache entries saved, {} loaded, {} hits",
        corpus.files.len(),
        saved_entries,
        loads,
        hits
    );

    let payload = serde_json::json!({
        "scale": scale,
        "seed": seed,
        "runs": runs,
        "files": corpus.files.len(),
        "edited_file": edited,
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "speedup": speedup,
        "cache": {
            "entries_saved": saved_entries,
            "loads": loads,
            "hits": hits,
        },
    });
    let text = serde_json::to_string_pretty(&payload).expect("serialize cache report");
    std::fs::write(&out, text).expect("write cache report");
    eprintln!("wrote {out}");

    // Append the best warm and best cold runs to the perf ledger, so
    // repeated invocations accumulate the baseline `ofence perf --gate`
    // compares against. Cold goes last: the gate judges the newest
    // record, and the cold run is the one an injected slowdown
    // (`--noise`) moves the most.
    if let Some(ledger) = perf_ledger {
        let path = std::path::Path::new(&ledger);
        for result in [best_warm, best_cold].into_iter().flatten() {
            let record = ofence::perf::record_of(&result, &config, None);
            ofence::perf::append_to(path, &record).expect("append perf ledger");
        }
        eprintln!("appended warm+cold records to {ledger}");
    }
}
