//! Benchmark/report harness for the OFence reproduction.

pub mod harness;
