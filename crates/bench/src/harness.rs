//! Shared harness: run the analyzer on a generated corpus and convert the
//! results into the corpus crate's evaluation records.

use ofence::{AnalysisConfig, AnalysisResult, DeviationKind, Engine, SourceFile};
use ofence_corpus::{evaluate, BugKind, Corpus, EvalSummary, FoundBug, FoundPairing};

/// Convert generated files into engine inputs.
pub fn to_source_files(corpus: &Corpus) -> Vec<SourceFile> {
    corpus
        .files
        .iter()
        .map(|f| SourceFile::new(f.name.clone(), f.content.clone()))
        .collect()
}

/// Run a full analysis over a corpus.
pub fn analyze_corpus(corpus: &Corpus, config: AnalysisConfig) -> AnalysisResult {
    let files = to_source_files(corpus);
    Engine::new(config).analyze(&files)
}

/// Map an analyzer deviation class onto the corpus bug taxonomy.
pub fn bug_kind_of(kind: &DeviationKind) -> Option<BugKind> {
    Some(match kind {
        DeviationKind::Misplaced { .. } => BugKind::Misplaced,
        DeviationKind::RepeatedRead { .. } => BugKind::RepeatedRead,
        DeviationKind::WrongBarrierType { .. } => BugKind::WrongBarrierType,
        DeviationKind::UnneededBarrier { .. } => BugKind::UnneededBarrier,
        DeviationKind::MissingBarrier { .. } => BugKind::MissingBarrier,
        DeviationKind::MissingOnce { .. } => return None,
    })
}

/// Convert analyzer output into evaluation records.
pub fn found_records(result: &AnalysisResult) -> (Vec<FoundBug>, Vec<FoundPairing>) {
    let bugs = result
        .deviations
        .iter()
        .filter_map(|d| {
            let kind = bug_kind_of(&d.kind)?;
            Some(FoundBug {
                function: d.site.function.clone(),
                kind,
                strukt: d
                    .object
                    .as_ref()
                    .map(|o| o.strukt.clone())
                    .unwrap_or_default(),
                field: d
                    .object
                    .as_ref()
                    .map(|o| o.field.clone())
                    .unwrap_or_default(),
            })
        })
        .collect();
    let pairings = result
        .pairing
        .pairings
        .iter()
        .map(|p| FoundPairing {
            functions: p
                .members
                .iter()
                .map(|&m| result.site(m).site.function.clone())
                .collect(),
        })
        .collect();
    (bugs, pairings)
}

/// Analyze + evaluate in one step.
pub fn evaluate_corpus(corpus: &Corpus, config: AnalysisConfig) -> (AnalysisResult, EvalSummary) {
    let result = analyze_corpus(corpus, config);
    let (bugs, pairings) = found_records(&result);
    let summary = evaluate(&corpus.manifest, &bugs, &pairings);
    (result, summary)
}
