//! Host crate for the workspace-level integration tests in the
//! repository-root `tests/` directory (see `Cargo.toml`'s `[[test]]`
//! entries). Intentionally empty: the tests span all workspace crates.
