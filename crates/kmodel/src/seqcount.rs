//! The `seqcount` interface — paper §5.3 and Listing 3.
//!
//! Seqcount readers/writers implement the "double pairing" pattern of
//! Figure 5: the writer bumps a sequence counter around its writes (each
//! bump paired with a barrier), and the reader reads the counter before
//! and after its reads (each read paired with a barrier). OFence models
//! every seqcount call as a (counter access, barrier) pair.

use crate::barriers::BarrierKind;
use serde::{Deserialize, Serialize};

/// Role of a seqcount API call in the double-pairing protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeqcountOp {
    /// `read_seqcount_begin(s)` — read counter, then read barrier.
    ReadBegin,
    /// `read_seqcount_retry(s, v)` — read barrier, then re-read counter.
    ReadRetry,
    /// `write_seqcount_begin(s)` — increment counter, then write barrier.
    WriteBegin,
    /// `write_seqcount_end(s)` — write barrier, then increment counter.
    WriteEnd,
}

impl SeqcountOp {
    /// Map a callee name to its seqcount role. Covers the raw seqcount API,
    /// the seqlock read side, and the netfilter `xt_recseq` wrappers from
    /// Listing 3.
    pub fn from_call_name(name: &str) -> Option<SeqcountOp> {
        Some(match name {
            "read_seqcount_begin"
            | "raw_read_seqcount_begin"
            | "read_seqbegin"
            | "xt_write_recseq_begin_read" => SeqcountOp::ReadBegin,
            "read_seqcount_retry" | "raw_read_seqcount_retry" | "read_seqretry" => {
                SeqcountOp::ReadRetry
            }
            "write_seqcount_begin"
            | "raw_write_seqcount_begin"
            | "write_seqlock"
            | "xt_write_recseq_begin" => SeqcountOp::WriteBegin,
            "write_seqcount_end"
            | "raw_write_seqcount_end"
            | "write_sequnlock"
            | "xt_write_recseq_end" => SeqcountOp::WriteEnd,
            _ => return None,
        })
    }

    /// The barrier the call contains.
    pub fn barrier(self) -> BarrierKind {
        match self {
            SeqcountOp::ReadBegin | SeqcountOp::ReadRetry => BarrierKind::Rmb,
            SeqcountOp::WriteBegin | SeqcountOp::WriteEnd => BarrierKind::Wmb,
        }
    }

    /// Does the call's counter access happen *before* its barrier (in
    /// program order)?
    pub fn access_before_barrier(self) -> bool {
        match self {
            // read counter, rmb
            SeqcountOp::ReadBegin => true,
            // rmb, re-read counter
            SeqcountOp::ReadRetry => false,
            // counter++, wmb
            SeqcountOp::WriteBegin => true,
            // wmb, counter++
            SeqcountOp::WriteEnd => false,
        }
    }

    /// Does the call write the counter (writer side) or read it?
    pub fn writes_counter(self) -> bool {
        matches!(self, SeqcountOp::WriteBegin | SeqcountOp::WriteEnd)
    }

    /// Is this the reader side of the protocol?
    pub fn is_reader(self) -> bool {
        !self.writes_counter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_mapping() {
        assert_eq!(
            SeqcountOp::from_call_name("read_seqcount_begin"),
            Some(SeqcountOp::ReadBegin)
        );
        assert_eq!(
            SeqcountOp::from_call_name("read_seqcount_retry"),
            Some(SeqcountOp::ReadRetry)
        );
        assert_eq!(
            SeqcountOp::from_call_name("xt_write_recseq_begin"),
            Some(SeqcountOp::WriteBegin)
        );
        assert_eq!(
            SeqcountOp::from_call_name("write_seqcount_end"),
            Some(SeqcountOp::WriteEnd)
        );
        assert_eq!(SeqcountOp::from_call_name("seqcount_init"), None);
    }

    #[test]
    fn protocol_shape() {
        // Figure 5: writer bumps the counter on both sides of its writes;
        // the first bump is before its barrier, the second after.
        assert!(SeqcountOp::WriteBegin.access_before_barrier());
        assert!(!SeqcountOp::WriteEnd.access_before_barrier());
        // Reader mirrors it.
        assert!(SeqcountOp::ReadBegin.access_before_barrier());
        assert!(!SeqcountOp::ReadRetry.access_before_barrier());
    }

    #[test]
    fn barrier_kinds() {
        assert_eq!(SeqcountOp::ReadBegin.barrier(), BarrierKind::Rmb);
        assert_eq!(SeqcountOp::WriteEnd.barrier(), BarrierKind::Wmb);
    }

    #[test]
    fn sides() {
        assert!(SeqcountOp::WriteBegin.writes_counter());
        assert!(SeqcountOp::ReadRetry.is_reader());
    }
}
