//! RCU primitives and their barrier semantics.
//!
//! The paper notes that beyond the ~2000 functions with explicit barriers,
//! over 6000 use kernel APIs that rely on barriers internally — RCU being
//! the main one. The publication side (`rcu_assign_pointer`) is literally
//! `smp_store_release`, and the consumption side (`rcu_dereference`)
//! provides dependency ordering that the analysis can treat as an
//! acquire-load: this maps RCU publish/subscribe onto the same pairing
//! machinery as explicit barriers.

use crate::barriers::BarrierKind;

/// Barrier-equivalent of an RCU call, if it has one.
///
/// * `rcu_assign_pointer(p, v)` — release store of `v` into `p`.
/// * `rcu_dereference(p)` (and variants) — dependency-ordered load,
///   modeled as an acquire load (strictly stronger, never misses a bug
///   the weaker ordering would allow).
pub fn rcu_barrier_equivalent(name: &str) -> Option<BarrierKind> {
    Some(match name {
        "rcu_assign_pointer" | "rcu_replace_pointer" => BarrierKind::StoreRelease,
        "rcu_dereference"
        | "rcu_dereference_check"
        | "rcu_dereference_protected"
        | "rcu_dereference_raw"
        | "srcu_dereference" => BarrierKind::LoadAcquire,
        _ => None?,
    })
}

/// RCU grace-period primitives with full memory-barrier semantics (they
/// bound barrier windows and make adjacent explicit barriers redundant).
pub fn has_rcu_full_barrier(name: &str) -> bool {
    matches!(
        name,
        "synchronize_rcu"
            | "synchronize_rcu_expedited"
            | "synchronize_srcu"
            | "rcu_barrier"
            | "call_rcu" // queues a callback; the API orders prior stores
    )
}

/// Read-side critical-section markers. NOT barriers (see Torvalds,
/// "rcu_read_lock lost its compiler barrier", ref \[24\] of the paper) —
/// listed so callers can assert we never misclassify them.
pub fn is_rcu_marker(name: &str) -> bool {
    matches!(
        name,
        "rcu_read_lock" | "rcu_read_unlock" | "rcu_read_lock_sched" | "rcu_read_unlock_sched"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_release() {
        assert_eq!(
            rcu_barrier_equivalent("rcu_assign_pointer"),
            Some(BarrierKind::StoreRelease)
        );
    }

    #[test]
    fn dereference_is_acquire() {
        for name in [
            "rcu_dereference",
            "rcu_dereference_check",
            "srcu_dereference",
        ] {
            assert_eq!(rcu_barrier_equivalent(name), Some(BarrierKind::LoadAcquire));
        }
    }

    #[test]
    fn markers_are_not_barriers() {
        assert!(is_rcu_marker("rcu_read_lock"));
        assert_eq!(rcu_barrier_equivalent("rcu_read_lock"), None);
        assert!(!has_rcu_full_barrier("rcu_read_unlock"));
    }

    #[test]
    fn grace_periods_are_full_barriers() {
        assert!(has_rcu_full_barrier("synchronize_rcu"));
        assert!(has_rcu_full_barrier("rcu_barrier"));
        assert!(!has_rcu_full_barrier("rcu_dereference"));
    }
}
