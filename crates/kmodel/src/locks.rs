//! Lock primitives and their implied ordering.
//!
//! Locks are out of scope for *pairing* (the paper: most unpaired barriers
//! synchronize with lock-based code, which lockset tools already cover),
//! but the model still needs to know their semantics: lock acquisition is
//! an acquire operation, release a release operation — neither is a full
//! two-way barrier, so neither bounds a barrier window nor makes an
//! adjacent explicit barrier redundant.

use crate::atomics::{AtomicSemantics, BarrierStrength};

/// Classify a lock API call, if it is one.
pub fn classify_lock(name: &str) -> Option<AtomicSemantics> {
    let acquire = |n: &str| {
        matches!(
            n,
            "spin_lock"
                | "spin_lock_irq"
                | "spin_lock_irqsave"
                | "spin_lock_bh"
                | "raw_spin_lock"
                | "read_lock"
                | "write_lock"
                | "mutex_lock"
                | "mutex_lock_interruptible"
                | "down"
                | "down_read"
                | "down_write"
                | "rt_mutex_lock"
        )
    };
    let release = |n: &str| {
        matches!(
            n,
            "spin_unlock"
                | "spin_unlock_irq"
                | "spin_unlock_irqrestore"
                | "spin_unlock_bh"
                | "raw_spin_unlock"
                | "read_unlock"
                | "write_unlock"
                | "mutex_unlock"
                | "up"
                | "up_read"
                | "up_write"
                | "rt_mutex_unlock"
        )
    };
    // Trylocks acquire on success; conservatively treat as acquire.
    let trylock = |n: &str| {
        matches!(
            n,
            "spin_trylock" | "mutex_trylock" | "down_trylock" | "down_read_trylock"
        )
    };
    if acquire(name) || trylock(name) {
        Some(AtomicSemantics {
            strength: BarrierStrength::Acquire,
            writes: true,
            reads: true,
        })
    } else if release(name) {
        Some(AtomicSemantics {
            strength: BarrierStrength::Release,
            writes: true,
            reads: true,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_acquire() {
        for name in ["spin_lock", "mutex_lock", "down_read", "spin_lock_irqsave"] {
            assert_eq!(
                classify_lock(name).unwrap().strength,
                BarrierStrength::Acquire,
                "{name}"
            );
        }
    }

    #[test]
    fn unlock_is_release() {
        for name in ["spin_unlock", "mutex_unlock", "up_write"] {
            assert_eq!(
                classify_lock(name).unwrap().strength,
                BarrierStrength::Release,
                "{name}"
            );
        }
    }

    #[test]
    fn locks_are_not_full_barriers() {
        // They must not bound barrier windows or justify barrier removal.
        for name in ["spin_lock", "spin_unlock", "mutex_lock"] {
            assert_ne!(classify_lock(name).unwrap().strength, BarrierStrength::Full);
        }
    }

    #[test]
    fn non_locks() {
        assert!(classify_lock("smp_mb").is_none());
        assert!(classify_lock("lock_page").is_none());
    }
}
