//! `READ_ONCE` / `WRITE_ONCE` compiler annotations — paper §7.
//!
//! These prevent load/store tearing, fusing, and invented accesses by the
//! compiler on variables that are concurrently accessed. OFence's §7
//! extension finds concurrent accesses that lack the annotation and
//! produces patches adding it.

use serde::{Deserialize, Serialize};

/// Which annotation a call is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnceKind {
    /// `READ_ONCE(x)`.
    Read,
    /// `WRITE_ONCE(x, v)`.
    Write,
}

impl OnceKind {
    pub fn from_call_name(name: &str) -> Option<OnceKind> {
        match name {
            "READ_ONCE" | "smp_read_barrier_depends_READ_ONCE" => Some(OnceKind::Read),
            "WRITE_ONCE" => Some(OnceKind::Write),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            OnceKind::Read => "READ_ONCE",
            OnceKind::Write => "WRITE_ONCE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping() {
        assert_eq!(OnceKind::from_call_name("READ_ONCE"), Some(OnceKind::Read));
        assert_eq!(
            OnceKind::from_call_name("WRITE_ONCE"),
            Some(OnceKind::Write)
        );
        assert_eq!(OnceKind::from_call_name("ONCE"), None);
    }

    #[test]
    fn names() {
        assert_eq!(OnceKind::Read.name(), "READ_ONCE");
        assert_eq!(OnceKind::Write.name(), "WRITE_ONCE");
    }
}
