//! Atomic and bit operations, and their barrier semantics — paper Table 2.
//!
//! The kernel's rule of thumb (Documentation/atomic_t.txt): atomic RMW
//! operations *with a return value* are fully ordered; RMW operations
//! without a return value (and plain reads/writes) are unordered;
//! `_relaxed` / `_acquire` / `_release` suffixes override the default.

use serde::{Deserialize, Serialize};

/// How strongly an atomic primitive orders surrounding memory accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BarrierStrength {
    /// No ordering (CPU may reorder the op with other accesses).
    None,
    /// Acquire ordering (later accesses cannot move before it).
    Acquire,
    /// Release ordering (earlier accesses cannot move after it).
    Release,
    /// Full two-way barrier.
    Full,
}

/// Classification of one atomic/bitop primitive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtomicSemantics {
    pub strength: BarrierStrength,
    /// Whether the op writes its target (RMW or store) — reads-only ops
    /// like `atomic_read` do not.
    pub writes: bool,
    /// Whether the op reads its target.
    pub reads: bool,
}

/// Classify an atomic or bit operation; `None` if the name is not one.
pub fn classify_atomic(name: &str) -> Option<AtomicSemantics> {
    // Strip the type prefix: atomic_, atomic64_, atomic_long_.
    let op = name
        .strip_prefix("atomic64_")
        .or_else(|| name.strip_prefix("atomic_long_"))
        .or_else(|| name.strip_prefix("atomic_"));
    if let Some(op) = op {
        return classify_atomic_op(op);
    }
    // Bit operations on bitfields.
    classify_bitop(name)
}

fn suffix_strength(op: &str) -> (BarrierStrength, &str) {
    if let Some(base) = op.strip_suffix("_relaxed") {
        (BarrierStrength::None, base)
    } else if let Some(base) = op.strip_suffix("_acquire") {
        (BarrierStrength::Acquire, base)
    } else if let Some(base) = op.strip_suffix("_release") {
        (BarrierStrength::Release, base)
    } else {
        (BarrierStrength::Full, op)
    }
}

fn classify_atomic_op(op: &str) -> Option<AtomicSemantics> {
    let (suffix_str, base) = suffix_strength(op);
    let explicit_suffix = base.len() != op.len();
    match base {
        // Plain read/write: unordered.
        "read" => Some(AtomicSemantics {
            strength: if explicit_suffix {
                suffix_str
            } else {
                BarrierStrength::None
            },
            writes: false,
            reads: true,
        }),
        "set" => Some(AtomicSemantics {
            strength: if explicit_suffix {
                suffix_str
            } else {
                BarrierStrength::None
            },
            writes: true,
            reads: false,
        }),
        // Void RMW: unordered unless a suffix says otherwise.
        "inc" | "dec" | "add" | "sub" | "or" | "and" | "xor" | "andnot" => Some(AtomicSemantics {
            strength: if explicit_suffix {
                suffix_str
            } else {
                BarrierStrength::None
            },
            writes: true,
            reads: true,
        }),
        // Value-returning RMW: fully ordered by default.
        _ if base.ends_with("_return")
            || base.ends_with("_and_test")
            || base.ends_with("_negative")
            || base.starts_with("fetch_")
            || base == "xchg"
            || base == "cmpxchg"
            || base.starts_with("try_cmpxchg")
            || base.starts_with("add_unless")
            || base == "inc_not_zero"
            || base == "dec_if_positive"
            || base == "inc_unless_negative"
            || base == "dec_unless_positive" =>
        {
            Some(AtomicSemantics {
                strength: suffix_str,
                writes: true,
                reads: true,
            })
        }
        _ => None,
    }
}

fn classify_bitop(name: &str) -> Option<AtomicSemantics> {
    match name {
        // Void bitops: atomic but unordered (Table 2: set_bit is not a
        // barrier).
        "set_bit" | "clear_bit" | "change_bit" => Some(AtomicSemantics {
            strength: BarrierStrength::None,
            writes: true,
            reads: true,
        }),
        // Value-returning bitops: fully ordered (Table 2: test_and_set_bit
        // is always a barrier).
        "test_and_set_bit" | "test_and_clear_bit" | "test_and_change_bit" => {
            Some(AtomicSemantics {
                strength: BarrierStrength::Full,
                writes: true,
                reads: true,
            })
        }
        // Lock-flavoured bit ops.
        "test_and_set_bit_lock" => Some(AtomicSemantics {
            strength: BarrierStrength::Acquire,
            writes: true,
            reads: true,
        }),
        "clear_bit_unlock" => Some(AtomicSemantics {
            strength: BarrierStrength::Release,
            writes: true,
            reads: true,
        }),
        // Non-atomic test: a plain read.
        "test_bit" => Some(AtomicSemantics {
            strength: BarrierStrength::None,
            writes: false,
            reads: true,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_rmw_is_unordered() {
        for name in ["atomic_inc", "atomic_dec", "atomic_add", "atomic64_inc"] {
            let sem = classify_atomic(name).unwrap();
            assert_eq!(sem.strength, BarrierStrength::None, "{name}");
            assert!(sem.writes);
        }
    }

    #[test]
    fn value_returning_rmw_is_full() {
        for name in [
            "atomic_inc_and_test",
            "atomic_dec_and_test",
            "atomic_add_return",
            "atomic_fetch_add",
            "atomic_xchg",
            "atomic_cmpxchg",
            "atomic64_inc_return",
            "atomic_inc_not_zero",
        ] {
            let sem = classify_atomic(name).unwrap();
            assert_eq!(sem.strength, BarrierStrength::Full, "{name}");
        }
    }

    #[test]
    fn suffixes_override() {
        assert_eq!(
            classify_atomic("atomic_add_return_relaxed")
                .unwrap()
                .strength,
            BarrierStrength::None
        );
        assert_eq!(
            classify_atomic("atomic_cmpxchg_acquire").unwrap().strength,
            BarrierStrength::Acquire
        );
        assert_eq!(
            classify_atomic("atomic_fetch_add_release")
                .unwrap()
                .strength,
            BarrierStrength::Release
        );
    }

    #[test]
    fn reads_and_sets() {
        let read = classify_atomic("atomic_read").unwrap();
        assert!(read.reads && !read.writes);
        assert_eq!(read.strength, BarrierStrength::None);
        let set = classify_atomic("atomic_set").unwrap();
        assert!(set.writes && !set.reads);
    }

    #[test]
    fn bitops() {
        assert_eq!(
            classify_atomic("set_bit").unwrap().strength,
            BarrierStrength::None
        );
        assert_eq!(
            classify_atomic("test_and_set_bit").unwrap().strength,
            BarrierStrength::Full
        );
        assert_eq!(
            classify_atomic("clear_bit_unlock").unwrap().strength,
            BarrierStrength::Release
        );
        assert!(!classify_atomic("test_bit").unwrap().writes);
    }

    #[test]
    fn non_atomics_are_none() {
        assert_eq!(classify_atomic("memcpy"), None);
        assert_eq!(classify_atomic("spin_lock"), None);
        assert_eq!(classify_atomic("atomic_bogus_op"), None);
    }
}
