//! Wake-up / IPC functions — the implicit-barrier list of paper §4.2.
//!
//! All of these imply a full memory barrier (the scheduler's
//! `try_to_wake_up` contains one) and, more importantly for pairing, act as
//! an *implicit read barrier* for the woken thread: a writer that publishes
//! data, issues `smp_wmb()`, and then wakes a consumer does not need the
//! consumer to issue an explicit `smp_rmb()`.

/// The wake-up function list. Kept sorted for the binary search in
/// [`is_wakeup_function`].
const WAKEUP_FUNCTIONS: &[&str] = &[
    "__wake_up",
    "__wake_up_sync",
    "complete",
    "complete_all",
    "irq_work_queue",
    "kick_process",
    "queue_work",
    "queue_work_on",
    "rcuwait_wake_up",
    "schedule_work",
    "smp_call_function",
    "smp_call_function_any",
    "smp_call_function_many",
    "smp_call_function_single",
    "swake_up_all",
    "swake_up_locked",
    "swake_up_one",
    "wake_up",
    "wake_up_all",
    "wake_up_bit",
    "wake_up_interruptible",
    "wake_up_interruptible_all",
    "wake_up_interruptible_sync",
    "wake_up_locked",
    "wake_up_process",
    "wake_up_q",
    "wake_up_state",
    "wake_up_var",
];

/// Is `name` a wake-up / IPC function (implicit barrier)?
pub fn is_wakeup_function(name: &str) -> bool {
    WAKEUP_FUNCTIONS.binary_search(&name).is_ok()
}

/// The full list, for documentation and the Table 2 report.
pub fn wakeup_functions() -> &'static [&'static str] {
    WAKEUP_FUNCTIONS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted() {
        let mut sorted = WAKEUP_FUNCTIONS.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            sorted, WAKEUP_FUNCTIONS,
            "list must stay sorted for binary search"
        );
    }

    #[test]
    fn known_wakeups() {
        assert!(is_wakeup_function("wake_up_process"));
        assert!(is_wakeup_function("smp_call_function_many"));
        assert!(is_wakeup_function("complete"));
    }

    #[test]
    fn non_wakeups() {
        assert!(!is_wakeup_function("schedule"));
        assert!(!is_wakeup_function("wait_event"));
        assert!(!is_wakeup_function("smp_wmb"));
    }
}
