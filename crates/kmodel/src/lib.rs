//! # kmodel — a model of Linux kernel concurrency primitives
//!
//! Static knowledge about the kernel API that OFence consumes:
//!
//! * the eight explicit barrier primitives (paper Table 1),
//! * which atomic/bitop/wake-up functions carry barrier semantics
//!   (paper Table 2),
//! * the wake-up / IPC function list used for implicit-barrier detection
//!   (paper §4.2 "Special case: implicit barriers"),
//! * the `seqcount` API (paper §5.3, Listing 3),
//! * the `READ_ONCE`/`WRITE_ONCE` annotations (paper §7).
//!
//! Maintaining such lists is standard practice in kernel static analysis —
//! the paper compares it to allocation-function lists in use-after-free
//! checkers.

pub mod atomics;
pub mod barriers;
pub mod idioms;
pub mod locks;
pub mod once;
pub mod rcu;
pub mod seqcount;
pub mod wakeup;

pub use atomics::{classify_atomic, AtomicSemantics, BarrierStrength};
pub use barriers::{BarrierKind, ImpliedAccess};
pub use idioms::ReaderIdiom;
pub use once::OnceKind;
pub use seqcount::SeqcountOp;
pub use wakeup::is_wakeup_function;

/// What a given callee name means to the concurrency analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallSemantics {
    /// One of the eight explicit barrier primitives (Table 1).
    Barrier(BarrierKind),
    /// An atomic/bitop primitive, with or without barrier semantics
    /// (Table 2).
    Atomic(AtomicSemantics),
    /// A wake-up / IPC function; all of these imply a full barrier and act
    /// as an implicit read barrier for the woken thread.
    WakeUp,
    /// A `seqcount` API call, which expands to reads/writes + barriers.
    Seqcount(SeqcountOp),
    /// `READ_ONCE` / `WRITE_ONCE` compiler annotations.
    Once(OnceKind),
    /// Anything else.
    Plain,
}

/// Classify a callee name. This is the single entry point the analysis
/// uses to interpret function calls.
pub fn classify_call(name: &str) -> CallSemantics {
    if let Some(kind) = BarrierKind::from_call_name(name) {
        return CallSemantics::Barrier(kind);
    }
    // RCU publish/subscribe maps onto release/acquire barriers.
    if let Some(kind) = rcu::rcu_barrier_equivalent(name) {
        return CallSemantics::Barrier(kind);
    }
    if let Some(op) = SeqcountOp::from_call_name(name) {
        return CallSemantics::Seqcount(op);
    }
    if let Some(kind) = OnceKind::from_call_name(name) {
        return CallSemantics::Once(kind);
    }
    if wakeup::is_wakeup_function(name) {
        return CallSemantics::WakeUp;
    }
    if let Some(sem) = atomics::classify_atomic(name) {
        return CallSemantics::Atomic(sem);
    }
    if let Some(sem) = locks::classify_lock(name) {
        return CallSemantics::Atomic(sem);
    }
    // Grace-period primitives: full barrier semantics without being a
    // pairing-relevant barrier site themselves.
    if rcu::has_rcu_full_barrier(name) {
        return CallSemantics::Atomic(AtomicSemantics {
            strength: BarrierStrength::Full,
            writes: false,
            reads: false,
        });
    }
    CallSemantics::Plain
}

/// Does a call to `name` provide full memory-barrier semantics on its own
/// (so that an adjacent explicit barrier is redundant — paper §5.1)?
pub fn has_full_barrier_semantics(name: &str) -> bool {
    match classify_call(name) {
        CallSemantics::Barrier(k) => k.orders_reads() && k.orders_writes(),
        CallSemantics::Atomic(sem) => sem.strength == BarrierStrength::Full,
        CallSemantics::WakeUp => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_dispatch() {
        assert_eq!(
            classify_call("smp_wmb"),
            CallSemantics::Barrier(BarrierKind::Wmb)
        );
        assert_eq!(classify_call("wake_up_process"), CallSemantics::WakeUp);
        assert_eq!(
            classify_call("READ_ONCE"),
            CallSemantics::Once(OnceKind::Read)
        );
        assert_eq!(classify_call("memcpy"), CallSemantics::Plain);
        assert!(matches!(
            classify_call("read_seqcount_begin"),
            CallSemantics::Seqcount(_)
        ));
        assert!(matches!(
            classify_call("atomic_inc"),
            CallSemantics::Atomic(_)
        ));
    }

    #[test]
    fn table2_rows() {
        // Paper Table 2, row by row.
        assert!(!has_full_barrier_semantics("atomic_inc"));
        assert!(has_full_barrier_semantics("atomic_inc_and_test"));
        assert!(!has_full_barrier_semantics("set_bit"));
        assert!(has_full_barrier_semantics("test_and_set_bit"));
        assert!(has_full_barrier_semantics("wake_up_process"));
    }

    #[test]
    fn full_barrier_semantics_for_smp_mb() {
        assert!(has_full_barrier_semantics("smp_mb"));
        assert!(!has_full_barrier_semantics("smp_wmb"));
        assert!(!has_full_barrier_semantics("smp_rmb"));
    }
}
