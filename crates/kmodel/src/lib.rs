//! # kmodel — a model of Linux kernel concurrency primitives
//!
//! Static knowledge about the kernel API that OFence consumes:
//!
//! * the eight explicit barrier primitives (paper Table 1),
//! * which atomic/bitop/wake-up functions carry barrier semantics
//!   (paper Table 2),
//! * the wake-up / IPC function list used for implicit-barrier detection
//!   (paper §4.2 "Special case: implicit barriers"),
//! * the `seqcount` API (paper §5.3, Listing 3),
//! * the `READ_ONCE`/`WRITE_ONCE` annotations (paper §7).
//!
//! Maintaining such lists is standard practice in kernel static analysis —
//! the paper compares it to allocation-function lists in use-after-free
//! checkers.

pub mod atomics;
pub mod barriers;
pub mod idioms;
pub mod locks;
pub mod once;
pub mod rcu;
pub mod seqcount;
pub mod wakeup;

pub use atomics::{classify_atomic, AtomicSemantics, BarrierStrength};
pub use barriers::{BarrierKind, ImpliedAccess};
pub use idioms::ReaderIdiom;
pub use once::OnceKind;
pub use seqcount::SeqcountOp;
pub use wakeup::is_wakeup_function;

/// What a given callee name means to the concurrency analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallSemantics {
    /// One of the eight explicit barrier primitives (Table 1).
    Barrier(BarrierKind),
    /// An atomic/bitop primitive, with or without barrier semantics
    /// (Table 2).
    Atomic(AtomicSemantics),
    /// A wake-up / IPC function; all of these imply a full barrier and act
    /// as an implicit read barrier for the woken thread.
    WakeUp,
    /// A `seqcount` API call, which expands to reads/writes + barriers.
    Seqcount(SeqcountOp),
    /// `READ_ONCE` / `WRITE_ONCE` compiler annotations.
    Once(OnceKind),
    /// Anything else.
    Plain,
}

/// Classify a callee name. This is the single entry point the analysis
/// uses to interpret function calls.
pub fn classify_call(name: &str) -> CallSemantics {
    if let Some(kind) = BarrierKind::from_call_name(name) {
        return CallSemantics::Barrier(kind);
    }
    // RCU publish/subscribe maps onto release/acquire barriers.
    if let Some(kind) = rcu::rcu_barrier_equivalent(name) {
        return CallSemantics::Barrier(kind);
    }
    if let Some(op) = SeqcountOp::from_call_name(name) {
        return CallSemantics::Seqcount(op);
    }
    if let Some(kind) = OnceKind::from_call_name(name) {
        return CallSemantics::Once(kind);
    }
    if wakeup::is_wakeup_function(name) {
        return CallSemantics::WakeUp;
    }
    if let Some(sem) = atomics::classify_atomic(name) {
        return CallSemantics::Atomic(sem);
    }
    if let Some(sem) = locks::classify_lock(name) {
        return CallSemantics::Atomic(sem);
    }
    // Grace-period primitives: full barrier semantics without being a
    // pairing-relevant barrier site themselves.
    if rcu::has_rcu_full_barrier(name) {
        return CallSemantics::Atomic(AtomicSemantics {
            strength: BarrierStrength::Full,
            writes: false,
            reads: false,
        });
    }
    CallSemantics::Plain
}

/// What a callee contributes to an inter-procedural *function summary*
/// (the unit the summary composition pass reasons about, as opposed to
/// the per-call classification of [`classify_call`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SummaryBarrier {
    /// No ordering semantics: the call is transparent to composition.
    None,
    /// An explicit barrier or seqcount primitive somewhere in the callee:
    /// composing past it would cross a bounding barrier, so the callee's
    /// accesses must NOT be merged into a caller's window.
    Explicit,
    /// Full-barrier semantics without being a pairable site (fully
    /// ordered atomics, wake-ups, RCU grace periods): recorded on the
    /// summary so callers know the callee self-orders, but safe to note
    /// without merging accesses across it.
    Full,
}

/// Summary-level classification of a call: how `name` affects the
/// [`SummaryBarrier`] of the function *containing* the call.
pub fn summary_barrier_of_call(name: &str) -> SummaryBarrier {
    match classify_call(name) {
        CallSemantics::Barrier(_) | CallSemantics::Seqcount(_) => SummaryBarrier::Explicit,
        CallSemantics::WakeUp => SummaryBarrier::Full,
        CallSemantics::Atomic(sem) if sem.strength == BarrierStrength::Full => SummaryBarrier::Full,
        _ => SummaryBarrier::None,
    }
}

impl SummaryBarrier {
    /// Combine two observations within one function: the strongest wins
    /// (`Explicit` > `Full` > `None`).
    pub fn join(self, other: SummaryBarrier) -> SummaryBarrier {
        use SummaryBarrier::*;
        match (self, other) {
            (Explicit, _) | (_, Explicit) => Explicit,
            (Full, _) | (_, Full) => Full,
            _ => None,
        }
    }

    /// May a caller merge this callee's accesses into its own barrier
    /// window? Only when no explicit barrier inside the callee would
    /// bound the window first.
    pub fn allows_composition(self) -> bool {
        !matches!(self, SummaryBarrier::Explicit)
    }
}

/// Does a call to `name` provide full memory-barrier semantics on its own
/// (so that an adjacent explicit barrier is redundant — paper §5.1)?
pub fn has_full_barrier_semantics(name: &str) -> bool {
    match classify_call(name) {
        CallSemantics::Barrier(k) => k.orders_reads() && k.orders_writes(),
        CallSemantics::Atomic(sem) => sem.strength == BarrierStrength::Full,
        CallSemantics::WakeUp => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_dispatch() {
        assert_eq!(
            classify_call("smp_wmb"),
            CallSemantics::Barrier(BarrierKind::Wmb)
        );
        assert_eq!(classify_call("wake_up_process"), CallSemantics::WakeUp);
        assert_eq!(
            classify_call("READ_ONCE"),
            CallSemantics::Once(OnceKind::Read)
        );
        assert_eq!(classify_call("memcpy"), CallSemantics::Plain);
        assert!(matches!(
            classify_call("read_seqcount_begin"),
            CallSemantics::Seqcount(_)
        ));
        assert!(matches!(
            classify_call("atomic_inc"),
            CallSemantics::Atomic(_)
        ));
    }

    #[test]
    fn table2_rows() {
        // Paper Table 2, row by row.
        assert!(!has_full_barrier_semantics("atomic_inc"));
        assert!(has_full_barrier_semantics("atomic_inc_and_test"));
        assert!(!has_full_barrier_semantics("set_bit"));
        assert!(has_full_barrier_semantics("test_and_set_bit"));
        assert!(has_full_barrier_semantics("wake_up_process"));
    }

    #[test]
    fn summary_barrier_classification() {
        assert_eq!(summary_barrier_of_call("smp_wmb"), SummaryBarrier::Explicit);
        assert_eq!(
            summary_barrier_of_call("write_seqcount_begin"),
            SummaryBarrier::Explicit
        );
        assert_eq!(
            summary_barrier_of_call("wake_up_process"),
            SummaryBarrier::Full
        );
        assert_eq!(
            summary_barrier_of_call("atomic_inc_and_test"),
            SummaryBarrier::Full
        );
        assert_eq!(summary_barrier_of_call("atomic_inc"), SummaryBarrier::None);
        assert_eq!(summary_barrier_of_call("memcpy"), SummaryBarrier::None);
    }

    #[test]
    fn summary_barrier_join_and_composition() {
        use SummaryBarrier::*;
        assert_eq!(None.join(Full), Full);
        assert_eq!(Full.join(Explicit), Explicit);
        assert_eq!(None.join(None), None);
        assert!(None.allows_composition());
        assert!(Full.allows_composition());
        assert!(!Explicit.allows_composition());
    }

    #[test]
    fn full_barrier_semantics_for_smp_mb() {
        assert!(has_full_barrier_semantics("smp_mb"));
        assert!(!has_full_barrier_semantics("smp_wmb"));
        assert!(!has_full_barrier_semantics("smp_rmb"));
    }
}
