//! The eight explicit barrier primitives — paper Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of explicit memory barrier (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BarrierKind {
    /// `smp_rmb()` — orders reads.
    Rmb,
    /// `smp_wmb()` — orders writes.
    Wmb,
    /// `smp_mb()` — orders reads and writes.
    Mb,
    /// `smp_store_mb(&a, v)` — write, then `smp_mb`.
    StoreMb,
    /// `smp_store_release(&a, v)` — `smp_mb`, then write.
    StoreRelease,
    /// `smp_load_acquire(&a)` — read, then `smp_mb`.
    LoadAcquire,
    /// `smp_mb__before_atomic()` — upgrades the following atomic to a barrier.
    BeforeAtomic,
    /// `smp_mb__after_atomic()` — upgrades the preceding atomic to a barrier.
    AfterAtomic,
}

/// A memory access performed *by the barrier primitive itself*
/// (`smp_store_release` writes its first argument, `smp_load_acquire`
/// reads it, `smp_store_mb` writes it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImpliedAccess {
    None,
    /// Writes arg 0; the write happens *before* the fence takes effect
    /// (`smp_store_mb`) — i.e. the access is on the "before" side.
    StoreBefore,
    /// Writes arg 0 *after* the fence (`smp_store_release`).
    StoreAfter,
    /// Reads arg 0 before the fence (`smp_load_acquire`).
    LoadBefore,
}

impl BarrierKind {
    /// Map a callee name to a barrier kind. This is the exhaustive Table 1
    /// list; nothing else is treated as an explicit barrier.
    pub fn from_call_name(name: &str) -> Option<BarrierKind> {
        Some(match name {
            "smp_rmb" => BarrierKind::Rmb,
            "smp_wmb" => BarrierKind::Wmb,
            "smp_mb" => BarrierKind::Mb,
            "smp_store_mb" => BarrierKind::StoreMb,
            "smp_store_release" => BarrierKind::StoreRelease,
            "smp_load_acquire" => BarrierKind::LoadAcquire,
            "smp_mb__before_atomic" => BarrierKind::BeforeAtomic,
            "smp_mb__after_atomic" => BarrierKind::AfterAtomic,
            _ => return None,
        })
    }

    /// The primitive's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            BarrierKind::Rmb => "smp_rmb",
            BarrierKind::Wmb => "smp_wmb",
            BarrierKind::Mb => "smp_mb",
            BarrierKind::StoreMb => "smp_store_mb",
            BarrierKind::StoreRelease => "smp_store_release",
            BarrierKind::LoadAcquire => "smp_load_acquire",
            BarrierKind::BeforeAtomic => "smp_mb__before_atomic",
            BarrierKind::AfterAtomic => "smp_mb__after_atomic",
        }
    }

    /// One-line description, as in Table 1.
    pub fn description(self) -> &'static str {
        match self {
            BarrierKind::Rmb => "Orders reads",
            BarrierKind::Wmb => "Orders writes",
            BarrierKind::Mb => "Orders reads and writes",
            BarrierKind::StoreMb => "Write + smp_mb",
            BarrierKind::StoreRelease => "smp_mb + write",
            BarrierKind::LoadAcquire => "Read + smp_mb",
            BarrierKind::BeforeAtomic => "Barrier before atomic_*()",
            BarrierKind::AfterAtomic => "Barrier after atomic_*()",
        }
    }

    /// All eight kinds, Table 1 order.
    pub const ALL: [BarrierKind; 8] = [
        BarrierKind::Rmb,
        BarrierKind::Wmb,
        BarrierKind::Mb,
        BarrierKind::StoreMb,
        BarrierKind::StoreRelease,
        BarrierKind::LoadAcquire,
        BarrierKind::BeforeAtomic,
        BarrierKind::AfterAtomic,
    ];

    pub fn orders_reads(self) -> bool {
        !matches!(self, BarrierKind::Wmb)
    }

    pub fn orders_writes(self) -> bool {
        !matches!(self, BarrierKind::Rmb)
    }

    /// Is this barrier usable on the write (publisher) side of a pairing?
    /// The pairing algorithm treats these as "write barriers".
    pub fn is_write_side(self) -> bool {
        matches!(
            self,
            BarrierKind::Wmb
                | BarrierKind::StoreRelease
                | BarrierKind::StoreMb
                | BarrierKind::Mb
                | BarrierKind::BeforeAtomic
                | BarrierKind::AfterAtomic
        )
    }

    /// Is this barrier usable on the read (subscriber) side of a pairing?
    pub fn is_read_side(self) -> bool {
        matches!(
            self,
            BarrierKind::Rmb
                | BarrierKind::LoadAcquire
                | BarrierKind::Mb
                | BarrierKind::BeforeAtomic
                | BarrierKind::AfterAtomic
        ) || self == BarrierKind::StoreMb // smp_store_mb is a full mb: both sides
    }

    /// Memory access performed by the primitive itself on its first
    /// argument.
    pub fn implied_access(self) -> ImpliedAccess {
        match self {
            BarrierKind::StoreMb => ImpliedAccess::StoreBefore,
            BarrierKind::StoreRelease => ImpliedAccess::StoreAfter,
            BarrierKind::LoadAcquire => ImpliedAccess::LoadBefore,
            _ => ImpliedAccess::None,
        }
    }

    /// Number of call arguments the primitive takes.
    pub fn arg_count(self) -> usize {
        match self {
            BarrierKind::StoreMb | BarrierKind::StoreRelease => 2,
            BarrierKind::LoadAcquire => 1,
            _ => 0,
        }
    }
}

impl fmt::Display for BarrierKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_roundtrip() {
        for kind in BarrierKind::ALL {
            assert_eq!(BarrierKind::from_call_name(kind.name()), Some(kind));
        }
        assert_eq!(BarrierKind::from_call_name("smp_mbx"), None);
        assert_eq!(BarrierKind::from_call_name("rmb"), None);
    }

    #[test]
    fn ordering_matrix() {
        assert!(BarrierKind::Rmb.orders_reads());
        assert!(!BarrierKind::Rmb.orders_writes());
        assert!(!BarrierKind::Wmb.orders_reads());
        assert!(BarrierKind::Wmb.orders_writes());
        assert!(BarrierKind::Mb.orders_reads());
        assert!(BarrierKind::Mb.orders_writes());
    }

    #[test]
    fn sides() {
        assert!(BarrierKind::Wmb.is_write_side());
        assert!(!BarrierKind::Wmb.is_read_side());
        assert!(BarrierKind::Rmb.is_read_side());
        assert!(!BarrierKind::Rmb.is_write_side());
        assert!(BarrierKind::Mb.is_write_side() && BarrierKind::Mb.is_read_side());
        assert!(BarrierKind::StoreRelease.is_write_side());
        assert!(BarrierKind::LoadAcquire.is_read_side());
    }

    #[test]
    fn implied_accesses() {
        assert_eq!(
            BarrierKind::StoreRelease.implied_access(),
            ImpliedAccess::StoreAfter
        );
        assert_eq!(
            BarrierKind::LoadAcquire.implied_access(),
            ImpliedAccess::LoadBefore
        );
        assert_eq!(BarrierKind::Wmb.implied_access(), ImpliedAccess::None);
    }

    #[test]
    fn arg_counts() {
        assert_eq!(BarrierKind::StoreRelease.arg_count(), 2);
        assert_eq!(BarrierKind::LoadAcquire.arg_count(), 1);
        assert_eq!(BarrierKind::Mb.arg_count(), 0);
    }
}
