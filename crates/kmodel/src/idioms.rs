//! Reader-side ordering idioms.
//!
//! The missing-barrier detector (ofence `missing` module) recognizes
//! readers that consume a publish/subscribe protocol *without* the read
//! fence the protocol requires. This table names the idioms it matches
//! and the fence each one conventionally uses, mirroring the style of
//! kernel code the paper analyzed (init-flag publication, ring-buffer
//! index handshakes, pointer publication via release stores).

/// A recognized reader-side idiom that requires read ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReaderIdiom {
    /// `if (!obj->ready) return; ... use obj->payload ...` — a flag
    /// guards initialized data (paper Listing 1).
    InitFlag,
    /// `while (tail != obj->head) { use obj->buf[tail]; }` — an index
    /// comparison guards buffer slots (circular buffers).
    IndexGuard,
    /// `p = obj->ptr; if (p) { use p->field; }` — a published pointer
    /// guards the structure it points to (RCU-style publication).
    PublishedPointer,
    /// `do { s = read_seqcount_begin(..); ... } while (retry)` — a
    /// sequence counter brackets a read section (paper §5.3).
    SeqcountSection,
}

impl ReaderIdiom {
    pub const ALL: [ReaderIdiom; 4] = [
        ReaderIdiom::InitFlag,
        ReaderIdiom::IndexGuard,
        ReaderIdiom::PublishedPointer,
        ReaderIdiom::SeqcountSection,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ReaderIdiom::InitFlag => "init-flag guard",
            ReaderIdiom::IndexGuard => "index guard",
            ReaderIdiom::PublishedPointer => "published pointer",
            ReaderIdiom::SeqcountSection => "seqcount read section",
        }
    }

    /// The read fence the idiom conventionally places between the guard
    /// load and the dependent loads.
    pub fn expected_fence(self) -> &'static str {
        match self {
            ReaderIdiom::InitFlag | ReaderIdiom::IndexGuard => "smp_rmb",
            ReaderIdiom::PublishedPointer => "smp_load_acquire",
            ReaderIdiom::SeqcountSection => "read_seqcount_begin",
        }
    }

    /// The write-side counterpart the fence pairs with.
    pub fn write_side_counterpart(self) -> &'static str {
        match self {
            ReaderIdiom::InitFlag | ReaderIdiom::IndexGuard => "smp_wmb",
            ReaderIdiom::PublishedPointer => "smp_store_release",
            ReaderIdiom::SeqcountSection => "write_seqcount_begin",
        }
    }

    /// One-line description used in diagnostics.
    pub fn description(self) -> &'static str {
        match self {
            ReaderIdiom::InitFlag => "flag load must be ordered before dependent data loads",
            ReaderIdiom::IndexGuard => "index load must be ordered before buffer-slot loads",
            ReaderIdiom::PublishedPointer => {
                "pointer load must be ordered before loads through the pointer"
            }
            ReaderIdiom::SeqcountSection => {
                "counter load must be ordered before the protected reads"
            }
        }
    }
}

/// Suggest the fence for an unfenced guarded reader, given the name of
/// the writer-side barrier it should pair with.
///
/// `smp_store_release` writers get `smp_load_acquire` on the single
/// guard; everything else gets a plain `smp_rmb` between the guard and
/// the dependent loads.
pub fn suggested_fence_for_writer(writer_barrier: &str) -> &'static str {
    if writer_barrier.contains("store_release") || writer_barrier.contains("rcu_assign_pointer") {
        "smp_load_acquire"
    } else {
        "smp_rmb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_consistent() {
        for idiom in ReaderIdiom::ALL {
            assert!(!idiom.name().is_empty());
            assert!(!idiom.description().is_empty());
            // Every read fence has a write-side counterpart of the
            // matching flavor.
            match idiom.expected_fence() {
                "smp_rmb" => assert_eq!(idiom.write_side_counterpart(), "smp_wmb"),
                "smp_load_acquire" => {
                    assert_eq!(idiom.write_side_counterpart(), "smp_store_release")
                }
                "read_seqcount_begin" => {
                    assert_eq!(idiom.write_side_counterpart(), "write_seqcount_begin")
                }
                other => panic!("unexpected fence {other}"),
            }
        }
    }

    #[test]
    fn fence_suggestion_tracks_writer() {
        assert_eq!(suggested_fence_for_writer("smp_wmb"), "smp_rmb");
        assert_eq!(
            suggested_fence_for_writer("smp_store_release"),
            "smp_load_acquire"
        );
    }
}
