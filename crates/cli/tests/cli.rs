//! End-to-end tests of the `ofence` binary.

use std::path::PathBuf;
use std::process::Command;

fn ofence() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ofence"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ofence-bin-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const BUGGY: &str = r#"struct rpc { int len; int recd; int out; };
void complete(struct rpc *req) {
	req->len = 4;
	smp_wmb();
	req->recd = 1;
}
void decode(struct rpc *req) {
	smp_rmb();
	if (!req->recd)
		return;
	req->out = req->len;
}
"#;

const CLEAN: &str = r#"struct m { int init; int y; };
void reader(struct m *a) {
	if (!a->init)
		return;
	smp_rmb();
	f(a->y);
}
void writer(struct m *b) {
	b->y = 1;
	smp_wmb();
	b->init = 1;
}
"#;

#[test]
fn analyze_clean_file_exits_zero() {
    let dir = tempdir("clean");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence().arg("analyze").arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no barrier-ordering issues found"),
        "{stdout}"
    );
    assert!(stdout.contains("pairings:"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_buggy_file_exits_one_with_diagnostic() {
    let dir = tempdir("buggy");
    let f = dir.join("xprt.c");
    std::fs::write(&f, BUGGY).unwrap();
    let out = ofence().arg("analyze").arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("warning: misplaced memory access"),
        "{stdout}"
    );
    assert!(stdout.contains("^"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn patch_apply_fixes_file_on_disk() {
    let dir = tempdir("apply");
    let f = dir.join("xprt.c");
    std::fs::write(&f, BUGGY).unwrap();
    let out = ofence()
        .arg("patch")
        .arg(&f)
        .arg("--apply")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}"); // findings existed
                                                       // Re-analyze: clean now.
    let out2 = ofence().arg("analyze").arg(&f).output().unwrap();
    assert!(out2.status.success(), "{out2:?}");
    let fixed = std::fs::read_to_string(&f).unwrap();
    let guard = fixed.find("if (!req->recd)").unwrap();
    let rmb = fixed.find("smp_rmb").unwrap();
    assert!(guard < rmb, "{fixed}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_json_is_parseable() {
    let dir = tempdir("json");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence()
        .arg("stats")
        .arg(&f)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid json");
    assert_eq!(v["barriers_total"], 2);
    assert_eq!(v["pairings"], 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gen_then_analyze_directory() {
    let dir = tempdir("gen");
    let corpus = dir.join("corpus");
    let out = ofence()
        .args(["gen", "--out"])
        .arg(&corpus)
        .args(["--files", "4", "--seed", "2"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(corpus.join("manifest.json").exists());
    let out = ofence().arg("analyze").arg(&corpus).output().unwrap();
    // Bug-free corpus may still contain decoy findings; accept 0 or 1.
    assert!(matches!(out.status.code(), Some(0) | Some(1)), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("files analyzed:        4"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn annotate_reports_missing_once() {
    let dir = tempdir("ann");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence().arg("annotate").arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("READ_ONCE("), "{stdout}");
    assert!(stdout.contains("WRITE_ONCE("), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn annotate_apply_reaches_fixpoint() {
    let dir = tempdir("annfix");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence()
        .arg("annotate")
        .arg(&f)
        .arg("--apply")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out2 = ofence().arg("annotate").arg(&f).output().unwrap();
    let stdout = String::from_utf8_lossy(&out2.stdout);
    assert!(
        stdout.contains("already annotated"),
        "second run must be a no-op: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_exits_two() {
    let out = ofence().arg("bogus").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn trace_out_writes_valid_chrome_trace() {
    let dir = tempdir("trace");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.txt");
    let out = ofence()
        .arg("analyze")
        .arg(&f)
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace).unwrap()).expect("valid trace JSON");
    let names: Vec<String> = v["traceEvents"]
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|e| e["name"].as_str().map(str::to_string))
        .collect();
    for phase in ["analyze", "parse", "cfg", "extract", "pair", "check"] {
        assert!(
            names.iter().any(|n| n == phase),
            "missing {phase}: {names:?}"
        );
    }
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("ofence_pairings_formed_total 1"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analyze_json_follows_schema() {
    let dir = tempdir("schema");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence()
        .arg("analyze")
        .arg(&f)
        .arg("--json")
        .output()
        .unwrap();
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid json");
    assert_eq!(v["schema_version"], ofence::json::SCHEMA_VERSION, "{v}");
    assert_eq!(v["pairings"].as_array().unwrap().len(), 1);
    assert_eq!(v["sites"].as_array().unwrap().len(), 2);
    assert!(v["observability"]["phase_us"]["pair"].as_u64().is_some());
    // v2 provenance: run id plus a fingerprint on every finding entry.
    assert!(v["run_id"].as_str().unwrap().starts_with("run-"), "{v}");
    assert!(v["findings"].as_array().is_some(), "{v}");
    for entry in v["annotations"].as_array().unwrap() {
        assert_eq!(entry["fingerprint"].as_str().unwrap().len(), 16, "{entry}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_prints_candidates_and_outcome() {
    let dir = tempdir("explain");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    // The writer's smp_wmb is on line 10 of CLEAN.
    let out = ofence()
        .arg("explain")
        .arg("clean.c:10")
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("smp_wmb"), "{stdout}");
    assert!(
        stdout.contains("verdict: paired with the target"),
        "{stdout}"
    );
    assert!(stdout.contains("outcome: PAIRED"), "{stdout}");
    assert!(stdout.contains("weight"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_wrong_line_lists_barriers() {
    let dir = tempdir("explain-miss");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence()
        .arg("explain")
        .arg("clean.c:999")
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no barrier at"), "{stderr}");
    assert!(stderr.contains("smp_wmb"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_json_serializes_explanation() {
    let dir = tempdir("explain-json");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let out = ofence()
        .arg("explain")
        .arg("clean.c:10")
        .arg(&f)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid json");
    assert!(
        v["target"]["is_write_barrier"].as_bool().unwrap_or(false),
        "{v}"
    );
    assert_eq!(v["candidates"].as_array().unwrap().len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn window_options_change_results() {
    let dir = tempdir("win");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    // A zero-size read window cannot see the reader's accesses: no pairing.
    let out = ofence()
        .args([
            "stats",
            "--read-window",
            "0",
            "--write-window",
            "0",
            "--json",
        ])
        .arg(&f)
        .output()
        .unwrap();
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["pairings"], 0, "{v}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_roundtrip_warm_run_hits() {
    let dir = tempdir("cache-rt");
    let corpus = dir.join("corpus");
    let cache = dir.join("cache");
    let out = ofence()
        .args(["gen", "--out"])
        .arg(&corpus)
        .args(["--files", "4", "--seed", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    // Cold run populates the disk cache.
    let m1 = dir.join("m1.txt");
    let out = ofence()
        .arg("analyze")
        .arg(&corpus)
        .arg("--cache-dir")
        .arg(&cache)
        .arg("--metrics-out")
        .arg(&m1)
        .output()
        .unwrap();
    assert!(matches!(out.status.code(), Some(0) | Some(1)), "{out:?}");
    assert!(cache.join("shard-00.json").exists());
    let t1 = std::fs::read_to_string(&m1).unwrap();
    // Zero-valued counters are elided: a cold run records no hits.
    assert!(!t1.contains("ofence_engine_cache_hits_total"), "{t1}");
    // Edit one file, re-analyze warm: everything else hits.
    let edited = corpus.join("gen/unit0000.c");
    let mut text = std::fs::read_to_string(&edited).unwrap();
    text.push_str("\nint cache_rt_added(void) { return 1; }\n");
    std::fs::write(&edited, text).unwrap();
    let m2 = dir.join("m2.txt");
    let out = ofence()
        .arg("analyze")
        .arg(&corpus)
        .arg("--cache-dir")
        .arg(&cache)
        .arg("--metrics-out")
        .arg(&m2)
        .output()
        .unwrap();
    assert!(matches!(out.status.code(), Some(0) | Some(1)), "{out:?}");
    let t2 = std::fs::read_to_string(&m2).unwrap();
    assert!(t2.contains("ofence_engine_cache_hits_total 3"), "{t2}");
    assert!(t2.contains("ofence_cache_loads_total 4"), "{t2}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_is_discarded_gracefully() {
    let dir = tempdir("cache-corrupt");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    let cache = dir.join("cache");
    std::fs::create_dir_all(&cache).unwrap();
    std::fs::write(cache.join("shard-00.json"), "{ not json !").unwrap();
    let out = ofence()
        .arg("analyze")
        .arg(&f)
        .arg("--cache-dir")
        .arg(&cache)
        .output()
        .unwrap();
    // The analysis still succeeds (cold), with a note on stderr.
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("discarding cache"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("no barrier-ordering issues"), "{stdout}");
    // The bad cache was replaced by a valid one.
    let rewritten = std::fs::read_to_string(cache.join("shard-00.json")).unwrap();
    assert!(rewritten.contains("format_version"), "{rewritten}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_cache_dir_is_a_clear_error() {
    let dir = tempdir("cache-unwritable");
    let f = dir.join("clean.c");
    std::fs::write(&f, CLEAN).unwrap();
    // A regular file where a directory is needed: create_dir_all fails
    // (works even when running as root, unlike permission bits).
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();
    let out = ofence()
        .arg("analyze")
        .arg(&f)
        .arg("--cache-dir")
        .arg(blocker.join("sub"))
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--cache-dir"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_dir_and_no_cache_conflict() {
    let out = ofence()
        .args(["analyze", "x.c", "--cache-dir", "d", "--no-cache"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn watch_nonexistent_dir_exits_two() {
    let out = ofence()
        .args(["watch", "/no/such/ofence-dir", "--max-iterations", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no such file or directory"), "{stderr}");
}

#[test]
fn watch_single_run_reports_deviations() {
    let dir = tempdir("watch-one");
    std::fs::write(dir.join("xprt.c"), BUGGY).unwrap();
    let out = ofence()
        .arg("watch")
        .arg(&dir)
        .args(["--max-iterations", "1", "--no-cache"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("watch: run 1"), "{stdout}");
    assert!(stdout.contains("1 deviations (1 new, 0 fixed)"), "{stdout}");
    assert!(stdout.contains("+ "), "{stdout}");
    assert!(
        stdout.contains("misplaced memory access in decode"),
        "{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_reports_delta_on_change() {
    let dir = tempdir("watch-delta");
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("xprt.c"), BUGGY).unwrap();
    let metrics = dir.join("metrics.txt");
    let mut child = ofence()
        .arg("watch")
        .arg(&src)
        .args(["--max-iterations", "2", "--interval-ms", "50"])
        .arg("--cache-dir")
        .arg(dir.join("cache"))
        .arg("--metrics-out")
        .arg(&metrics)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Give run 1 time to finish, then fix the bug: run 2 must report the
    // finding as fixed and the process exits (max-iterations reached).
    std::thread::sleep(std::time::Duration::from_millis(1500));
    std::fs::write(src.join("xprt.c"), CLEAN).unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        if std::time::Instant::now() > deadline {
            let _ = child.kill();
            panic!("watch did not exit after the second run");
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    let out = child.wait_with_output().unwrap();
    assert!(status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("watch: run 1"), "{stdout}");
    assert!(stdout.contains("watch: run 2"), "{stdout}");
    assert!(stdout.contains("0 deviations (0 new, 1 fixed)"), "{stdout}");
    assert!(stdout.contains("- "), "{stdout}");
    // The per-run metrics carry the cumulative iteration counter.
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("ofence_watch_iterations_total 2"), "{text}");
    assert!(dir.join("cache").join("shard-00.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A second, independent copy of the misplaced-read pattern, used to
/// introduce a fresh deviation next to the baselined one.
const BUGGY_EXTRA: &str = r#"struct rpc2 { int len2; int recd2; int out2; };
void complete2(struct rpc2 *req) {
	req->len2 = 4;
	smp_wmb();
	req->recd2 = 1;
}
void decode2(struct rpc2 *req) {
	smp_rmb();
	if (!req->recd2)
		return;
	req->out2 = req->len2;
}
"#;

#[test]
fn fail_on_new_gates_via_baseline() {
    let dir = tempdir("failon");
    let f = dir.join("xprt.c");
    std::fs::write(&f, BUGGY).unwrap();
    let base = dir.join("base.json");
    let hist = dir.join("hist");

    // Without a baseline, every finding is new: --fail-on=new fails.
    let out = ofence()
        .args(["analyze", "--fail-on=new", "--no-history"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // --fail-on=none never fails on findings.
    let out = ofence()
        .args(["analyze", "--fail-on=none", "--no-history"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Record the known finding, then --fail-on=new passes...
    let out = ofence()
        .args(["baseline", "write"])
        .arg(&f)
        .arg("--out")
        .arg(&base)
        .arg("--history-dir")
        .arg(&hist)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("recorded 1 finding(s)"),
        "{out:?}"
    );
    let out = ofence()
        .args(["analyze", "--fail-on=new", "--no-history", "--baseline"])
        .arg(&base)
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("baseline: 1 known, 0 new, 0 fixed"),
        "{stdout}"
    );

    // ...until an edit introduces a fresh deviation.
    std::fs::write(&f, format!("{BUGGY}{BUGGY_EXTRA}")).unwrap();
    let out = ofence()
        .args(["analyze", "--fail-on=new", "--no-history", "--baseline"])
        .arg(&base)
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("baseline: 1 known, 1 new, 0 fixed"),
        "{stdout}"
    );

    // Re-baselining the new state makes the gate pass again.
    let out = ofence()
        .args(["baseline", "write"])
        .arg(&f)
        .arg("--out")
        .arg(&base)
        .arg("--history-dir")
        .arg(&hist)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = ofence()
        .args(["analyze", "--fail-on=new", "--no-history", "--baseline"])
        .arg(&base)
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_two_json_reports_exact_delta() {
    let dir = tempdir("diff-json");
    let f = dir.join("xprt.c");
    std::fs::write(&f, BUGGY).unwrap();
    let run_json = |path: &std::path::Path| -> Vec<u8> {
        let out = ofence()
            .args(["analyze", "--json", "--no-history"])
            .arg(path)
            .output()
            .unwrap();
        out.stdout
    };
    let old = dir.join("old.json");
    std::fs::write(&old, run_json(&f)).unwrap();

    // A line shift plus one genuinely new deviation: the diff must report
    // exactly the injected delta, nothing else.
    std::fs::write(
        &f,
        format!("/* c1 */\n/* c2 */\n/* c3 */\n{BUGGY}{BUGGY_EXTRA}"),
    )
    .unwrap();
    let new = dir.join("new.json");
    std::fs::write(&new, run_json(&f)).unwrap();

    let out = ofence().arg("diff").arg(&old).arg(&new).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}"); // new finding => fail-on=new default
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("diff: 1 new, 0 fixed, 1 unchanged"),
        "{stdout}"
    );
    assert!(
        stdout.contains("misplaced memory access in decode2"),
        "{stdout}"
    );

    // JSON output parses and agrees; --fail-on=none exits zero.
    let out = ofence()
        .arg("diff")
        .arg(&old)
        .arg(&new)
        .args(["--json", "--fail-on=none"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid diff json");
    assert_eq!(v["summary"]["new"], 1, "{v}");
    assert_eq!(v["summary"]["fixed"], 0, "{v}");
    assert_eq!(v["summary"]["unchanged"], 1, "{v}");
    assert_eq!(v["new"][0]["function"].as_str(), Some("decode2"), "{v}");

    // An identical pair of reports diffs clean (exit zero by default).
    let out = ofence().arg("diff").arg(&new).arg(&new).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("diff: 0 new, 0 fixed, 2 unchanged"),
        "{out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_resolves_ledger_run_ids() {
    let dir = tempdir("diff-ledger");
    let f = dir.join("xprt.c");
    let hist = dir.join("hist");
    std::fs::write(&f, BUGGY).unwrap();
    let analyze = |path: &std::path::Path| {
        let out = ofence()
            .arg("analyze")
            .arg(path)
            .arg("--history-dir")
            .arg(&hist)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "{out:?}");
    };
    analyze(&f);
    std::fs::write(&f, format!("{BUGGY}{BUGGY_EXTRA}")).unwrap();
    analyze(&f);

    // Pull the two run ids back out of the ledger.
    let ledger = std::fs::read_to_string(hist.join("history.jsonl")).unwrap();
    let ids: Vec<String> = ledger
        .lines()
        .map(|l| {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            v["run_id"].as_str().unwrap().to_string()
        })
        .collect();
    assert_eq!(ids.len(), 2, "{ledger}");

    let out = ofence()
        .arg("diff")
        .arg(&ids[0])
        .arg(&ids[1])
        .arg("--history-dir")
        .arg(&hist)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("diff: 1 new, 0 fixed, 1 unchanged"),
        "{stdout}"
    );

    // Unambiguous prefixes resolve too.
    let out = ofence()
        .arg("diff")
        .arg(&ids[0][..9])
        .arg(&ids[1][..9])
        .arg("--history-dir")
        .arg(&hist)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("diff: 1 new"), "{out:?}");

    // An unknown id is a usage error (exit 2), not a crash.
    let out = ofence()
        .arg("diff")
        .arg("run-feedfacefeedface")
        .arg(&ids[1])
        .arg("--history-dir")
        .arg(&hist)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no run"),
        "{out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sarif_export_is_valid() {
    let dir = tempdir("sarif");
    let f = dir.join("xprt.c");
    std::fs::write(&f, BUGGY).unwrap();
    let sarif = dir.join("out.sarif");
    let out = ofence()
        .args(["analyze", "--no-history", "--sarif-out"])
        .arg(&sarif)
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}"); // finding present
    let v: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&sarif).unwrap()).expect("valid SARIF JSON");
    assert_eq!(v["version"].as_str(), Some("2.1.0"), "{v}");
    let results = v["runs"][0]["results"].as_array().unwrap();
    assert!(!results.is_empty(), "{v}");
    for r in results {
        let fps = r["partialFingerprints"].as_object().unwrap();
        assert!(!fps.is_empty(), "{r}");
        assert_eq!(
            r["partialFingerprints"]["ofenceFingerprint/v1"]
                .as_str()
                .unwrap()
                .len(),
            16
        );
        assert!(r["locations"][0]["physicalLocation"]["region"]["startLine"]
            .as_u64()
            .is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suppression_comment_silences_finding() {
    let dir = tempdir("suppress");
    let f = dir.join("xprt.c");
    std::fs::write(
        &f,
        BUGGY.replace(
            "\tif (!req->recd)",
            "\t/* ofence-ignore: known-benign init race */\n\tif (!req->recd)",
        ),
    )
    .unwrap();
    let out = ofence()
        .args(["analyze", "--no-history", "--metrics-out"])
        .arg(dir.join("m.txt"))
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("no barrier-ordering issues found"),
        "{out:?}"
    );
    let metrics = std::fs::read_to_string(dir.join("m.txt")).unwrap();
    assert!(metrics.contains("ofence_suppressed_total 1"), "{metrics}");
    let _ = std::fs::remove_dir_all(&dir);
}
