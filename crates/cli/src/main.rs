//! `ofence` — the command-line front end.
//!
//! ```text
//! ofence analyze  <paths...> [options]   findings + pairings summary
//! ofence patch    <paths...> [options]   print unified-diff patches
//!                            --apply     write the fixes back to disk
//! ofence annotate <paths...> [options]   READ_ONCE/WRITE_ONCE patches (§7)
//! ofence stats    <paths...> [options]   corpus statistics only
//! ofence explain  <file:line> <paths...> replay one pairing decision
//! ofence watch    <paths...> [options]   re-analyze on change, print the
//!                                        finding delta (+ new, - fixed)
//! ofence serve    <paths...> [options]   analysis daemon: JSON-RPC over
//!                                        TCP, shared warm cache, identical
//!                                        in-flight requests coalesced
//! ofence call     <host:port> <method>   one-shot daemon client; prints
//!                            [--params J] the result document
//! ofence diff     <old> <new> [options]  classify findings new/fixed/
//!                                        unchanged by stable fingerprint
//!                                        (run ids or --json reports)
//! ofence diff     --baseline FILE <paths...>
//!                                        current run vs a baseline
//! ofence baseline write <paths...> [--out FILE]
//!                                        snapshot current findings
//! ofence perf     [--gate] [options]     perf-ledger trend table, or a
//!                                        CI regression gate
//! ofence gen      --out DIR [--files N] [--seed S] [--bugs]
//!                                        emit a synthetic demo corpus
//!
//! options:
//!   --json                 machine-readable output
//!   --trace-out FILE       Chrome-tracing JSON trace of the run
//!   --metrics-out FILE     Prometheus text-format metrics of the run
//!   --events-out FILE      stream NDJSON span/counter events live
//!                          (`-` for stdout)
//!   --slow-files N         list the top N slowest files (default 5)
//!   --sarif-out FILE       SARIF 2.1.0 export with partialFingerprints
//!   --baseline FILE        compare findings against this baseline
//!   --fail-on POLICY       exit non-zero on: new | any | none
//!   --history-dir DIR      run-ledger directory (default .ofence/)
//!   --no-history           skip the run ledger
//!   --cache-dir DIR        persist the per-file analysis cache here
//!                          (default .ofence-cache/)
//!   --no-cache             skip the on-disk cache entirely
//!   --write-window N       statements explored around write barriers (5)
//!   --read-window N        statements explored around read barriers (50)
//!   --no-ipc               disable implicit wake-up barrier detection
//!   --no-expand            disable callee/caller expansion
//!   --interval-ms N        watch: poll period (500)
//!   --max-iterations N     watch: exit after N analysis runs
//!   --serve-metrics ADDR   watch: live /metrics + /health endpoint
//!   --addr HOST:PORT       serve: listen address (default 127.0.0.1:0)
//!   --metrics HOST:PORT    serve: live /metrics + /health endpoint
//!   --ledger FILE          perf: explicit ledger file
//!   --last N               perf: records shown in the trend (10)
//!   --max-regress-pct P    perf: gate threshold in percent (10)
//! ```
//!
//! Paths may be files or directories (searched recursively for `*.c`).

mod args;
mod commands;
mod walk;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("ofence: {e}");
                ExitCode::from(2)
            }
        },
        Err(e) => {
            eprintln!("ofence: {e}");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
