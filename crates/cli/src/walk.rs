//! Input collection: expand files and directories into `SourceFile`s.
//!
//! The implementation moved to `ofence::walk` when the analysis daemon
//! started snapshotting the corpus from inside `core`; this module stays
//! as the CLI-side name for it.

pub use ofence::walk::collect_sources;

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ofence-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        dir
    }

    #[test]
    fn collects_recursively_and_sorted() {
        let dir = tempdir("walk");
        std::fs::write(dir.join("b.c"), "int b;").unwrap();
        std::fs::write(dir.join("a.c"), "int a;").unwrap();
        std::fs::write(dir.join("sub/c.c"), "int c;").unwrap();
        std::fs::write(dir.join("ignore.h"), "int h;").unwrap();
        let files = collect_sources(&[dir.display().to_string()]).unwrap();
        assert_eq!(files.len(), 3);
        assert!(files[0].name.ends_with("a.c"));
        assert!(files[2].name.ends_with("c.c"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_path_errors() {
        assert!(collect_sources(&["/no/such/path.c".to_string()]).is_err());
    }

    #[test]
    fn explicit_file_any_extension() {
        let dir = tempdir("file");
        let p = dir.join("x.inc");
        std::fs::write(&p, "int x;").unwrap();
        let files = collect_sources(&[p.display().to_string()]).unwrap();
        assert_eq!(files.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
