//! Subcommand implementations.

use crate::args::{
    BaselineWriteOpts, CallOpts, Command, DiffOpts, ExplainOpts, GenOpts, PerfOpts, RunOpts,
    ServeOpts, TraceOpts, WatchOpts,
};
use crate::walk::collect_sources;
use ofence::obs::NdjsonSink;
use ofence::{AnalysisResult, Engine, FailOn, FindingRecord, LoadOutcome, Patch};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

pub fn run(cmd: Command) -> Result<ExitCode, String> {
    match cmd {
        Command::Analyze(o) => analyze(o),
        Command::Patch(o) => patch(o),
        Command::Annotate(o) => annotate(o),
        Command::Stats(o) => stats(o),
        Command::Explain(o) => explain(o),
        Command::Watch(o) => watch(o),
        Command::Serve(o) => serve(o),
        Command::Call(o) => call(o),
        Command::Trace(o) => trace(o),
        Command::Diff(o) => diff(o),
        Command::BaselineWrite(o) => baseline_write(o),
        Command::Perf(o) => perf(o),
        Command::Gen(o) => gen(o),
    }
}

/// Where this invocation keeps its on-disk cache, if anywhere.
fn cache_dir_of(opts: &RunOpts) -> Option<PathBuf> {
    if opts.no_cache {
        return None;
    }
    Some(PathBuf::from(
        opts.cache_dir
            .as_deref()
            .unwrap_or(ofence::cache::DEFAULT_CACHE_DIR),
    ))
}

/// Load the on-disk cache into `engine` (never fatal: a stale or corrupt
/// cache is discarded with a note and the run proceeds cold).
fn load_cache(engine: &mut Engine, dir: &std::path::Path) {
    if let LoadOutcome::Discarded { reason } = engine.load_disk_cache(dir) {
        eprintln!(
            "ofence: discarding cache in {} ({reason}); analyzing cold",
            dir.display()
        );
    }
}

/// Flush the engine's cache to disk. Failing to write an explicitly
/// requested `--cache-dir` is an error; the implicit default directory
/// only warns (the analysis itself succeeded).
fn save_cache(engine: &mut Engine, opts: &RunOpts, dir: &std::path::Path) -> Result<(), String> {
    match engine.save_disk_cache(dir) {
        Ok(_) => Ok(()),
        Err(e) if opts.cache_dir.is_some() => Err(format!("--cache-dir {}: {e}", dir.display())),
        Err(e) => {
            eprintln!("ofence: could not write cache to {}: {e}", dir.display());
            Ok(())
        }
    }
}

/// Build the engine for an invocation: config, presentation knobs, and
/// the live event stream (`--events-out`), which attaches before any
/// analysis so the stream covers the whole run. The sink handle comes
/// back too, so the caller can flush it and report write errors when
/// the run ends.
fn build_engine(opts: &RunOpts) -> Result<(Engine, Option<Arc<NdjsonSink>>), String> {
    let mut engine = Engine::new(opts.config.clone());
    if let Some(n) = opts.slow_files {
        engine.set_slow_files(n);
    }
    let mut events = None;
    if let Some(path) = &opts.events_out {
        let writer: Box<dyn std::io::Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            let f = std::fs::File::create(path).map_err(|e| format!("--events-out {path}: {e}"))?;
            Box::new(std::io::BufWriter::new(f))
        };
        let sink = Arc::new(NdjsonSink::new(writer));
        engine.recorder().add_sink(sink.clone());
        events = Some(sink);
    }
    Ok((engine, events))
}

/// Flush the event stream and warn (never fail) on write errors — a
/// broken event stream must not turn a finished analysis into a
/// failure.
fn finish_events(engine: &Engine, events: &Option<Arc<NdjsonSink>>) {
    let Some(sink) = events else { return };
    engine.recorder().flush_sinks();
    if sink.write_errors() > 0 {
        eprintln!(
            "ofence: {} event(s) lost to write errors on the --events-out stream",
            sink.write_errors()
        );
    }
}

/// Run the engine over `opts.paths` without writing any observability
/// outputs — callers that inject their own counters (analyze, diff,
/// baseline) do that first and then call [`write_observability`].
fn run_engine_raw(opts: &RunOpts) -> Result<AnalysisResult, String> {
    let sources = collect_sources(&opts.paths)?;
    let (mut engine, events) = build_engine(opts)?;
    let cache_dir = cache_dir_of(opts);
    if let Some(dir) = &cache_dir {
        load_cache(&mut engine, dir);
    }
    let result = engine.analyze(&sources);
    if let Some(dir) = &cache_dir {
        save_cache(&mut engine, opts, dir)?;
    }
    finish_events(&engine, &events);
    append_perf(opts, &result, None)?;
    Ok(result)
}

fn run_engine(opts: &RunOpts) -> Result<AnalysisResult, String> {
    let result = run_engine_raw(opts)?;
    write_observability(opts, &result)?;
    Ok(result)
}

/// Where this invocation appends its run ledger, if anywhere.
fn history_dir_of(opts: &RunOpts) -> Option<PathBuf> {
    if opts.no_history {
        return None;
    }
    Some(PathBuf::from(
        opts.history_dir
            .as_deref()
            .unwrap_or(ofence::history::DEFAULT_HISTORY_DIR),
    ))
}

/// Append the run to the ledger. Failing to write an explicitly
/// requested `--history-dir` is an error; the implicit default directory
/// only warns (mirrors the cache policy).
fn append_history(
    opts: &RunOpts,
    result: &AnalysisResult,
    records: &[FindingRecord],
) -> Result<(), String> {
    let Some(dir) = history_dir_of(opts) else {
        return Ok(());
    };
    let record = ofence::history::record_of(result, &opts.config, records.to_vec());
    match ofence::history::append(&dir, &record) {
        Ok(()) => Ok(()),
        Err(e) if opts.history_dir.is_some() => Err(format!("--history-dir: {e}")),
        Err(e) => {
            eprintln!("ofence: could not append run ledger: {e}");
            Ok(())
        }
    }
}

/// Append the run's timing profile to the perf ledger (next to the
/// history ledger, same `--history-dir` / `--no-history` policy).
fn append_perf(
    opts: &RunOpts,
    result: &AnalysisResult,
    iteration_us: Option<u64>,
) -> Result<(), String> {
    let Some(dir) = history_dir_of(opts) else {
        return Ok(());
    };
    let record = ofence::perf::record_of(result, &opts.config, iteration_us);
    match ofence::perf::append(&dir, &record) {
        Ok(()) => Ok(()),
        Err(e) if opts.history_dir.is_some() => Err(format!("--history-dir: {e}")),
        Err(e) => {
            eprintln!("ofence: could not append perf ledger: {e}");
            Ok(())
        }
    }
}

/// `ofence perf` — print the perf-ledger trend, or gate CI on a
/// regression of the newest record against the baseline median.
fn perf(opts: PerfOpts) -> Result<ExitCode, String> {
    let history_dir = Path::new(
        opts.history_dir
            .as_deref()
            .unwrap_or(ofence::history::DEFAULT_HISTORY_DIR),
    );
    if opts.requests {
        // Daemon request ledger instead of the analysis perf ledger.
        let ledger = match &opts.ledger {
            Some(path) => PathBuf::from(path),
            None => ofence::perf::requests_path(history_dir),
        };
        let (records, skipped) = ofence::perf::load_requests_file(&ledger)?;
        if skipped > 0 {
            eprintln!("ofence: skipped {skipped} corrupt request-ledger line(s)");
        }
        if opts.json {
            let shown = &records[records.len().saturating_sub(opts.last)..];
            println!("{}", serde_json::to_string_pretty(&shown).unwrap());
        } else {
            print!(
                "{}",
                ofence::perf::render_request_trends(&records, opts.last)
            );
        }
        return Ok(ExitCode::SUCCESS);
    }
    let ledger = match &opts.ledger {
        Some(path) => PathBuf::from(path),
        None => ofence::perf::ledger_path(history_dir),
    };
    let (records, skipped) = ofence::perf::load_file(&ledger)?;
    if skipped > 0 {
        eprintln!("ofence: skipped {skipped} corrupt perf-ledger line(s)");
    }
    if opts.gate {
        let outcome = ofence::perf::gate(&records, opts.max_regress_pct)?;
        if opts.json {
            println!("{}", serde_json::to_string_pretty(&outcome).unwrap());
        } else {
            println!("perf gate: {}", outcome.note);
        }
        return Ok(if outcome.pass {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }
    if opts.json {
        let shown = &records[records.len().saturating_sub(opts.last)..];
        println!("{}", serde_json::to_string_pretty(&shown).unwrap());
    } else {
        print!("{}", ofence::perf::render_trend(&records, opts.last));
    }
    Ok(ExitCode::SUCCESS)
}

/// Honor `--sarif-out` for any subcommand that ran the engine.
fn write_sarif(opts: &RunOpts, result: &AnalysisResult) -> Result<(), String> {
    if let Some(path) = &opts.sarif_out {
        let doc = serde_json::to_string_pretty(&ofence::to_sarif(result)).unwrap();
        std::fs::write(path, doc + "\n").map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote SARIF to {path}");
    }
    Ok(())
}

/// Honor `--trace-out` / `--metrics-out` for any analysis subcommand.
fn write_observability(opts: &RunOpts, result: &AnalysisResult) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, result.obs.chrome_trace_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote trace to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, result.obs.prometheus_text()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote metrics to {path}");
    }
    Ok(())
}

/// `ofence analyze` — findings + pairing summary. The exit code follows
/// the `--fail-on` policy (default `any`: exit 1 when any deviation was
/// found, the historical CI-friendly behaviour).
fn analyze(opts: RunOpts) -> Result<ExitCode, String> {
    let mut result = run_engine_raw(&opts)?;
    let records = ofence::finding_records(&result.deviations, &result.sites, &result.files);
    // Against a baseline, classify so `--fail-on=new` gates only on
    // regressions; without one, every finding counts as new.
    let baseline = opts
        .baseline
        .as_deref()
        .map(|p| ofence::diffing::load_baseline(Path::new(p)))
        .transpose()?;
    let delta = match &baseline {
        Some(b) => ofence::classify(&b.findings, &records),
        None => ofence::classify(&[], &records),
    };
    result.obs = result.obs.with_counters([
        ("findings_new".to_string(), delta.new.len() as u64),
        ("findings_fixed".to_string(), delta.fixed.len() as u64),
    ]);
    write_observability(&opts, &result)?;
    write_sarif(&opts, &result)?;
    append_history(&opts, &result, &records)?;
    if opts.json {
        // The stable, versioned schema documented in docs/SCHEMA.md.
        println!(
            "{}",
            serde_json::to_string_pretty(&result.to_json()).unwrap()
        );
    } else {
        println!("{}", result.stats.render());
        if !result.pairing.pairings.is_empty() {
            println!("pairings:");
            for p in &result.pairing.pairings {
                let fns: Vec<String> = p
                    .members
                    .iter()
                    .map(|&m| {
                        let s = result.site(m);
                        format!("{}:{}", s.site.file_name, s.site.function)
                    })
                    .collect();
                println!("  {} on {:?}", fns.join(" <-> "), p.objects);
            }
        }
        if result.deviations.is_empty() {
            println!("\nno barrier-ordering issues found.");
        } else {
            println!();
            for d in &result.deviations {
                println!("{}", d.render(&result.files[d.site.file].source));
            }
        }
        if baseline.is_some() {
            println!(
                "baseline: {} known, {} new, {} fixed",
                delta.unchanged.len(),
                delta.new.len(),
                delta.fixed.len()
            );
        }
    }
    let fail = match opts.fail_on.unwrap_or(FailOn::Any) {
        FailOn::Any => !result.deviations.is_empty(),
        FailOn::New => !delta.new.is_empty(),
        FailOn::None => false,
    };
    Ok(if fail {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// `ofence serve` — the long-running analysis daemon: one shared
/// [`ofence::Session`] (warm engine cache, persistent worker pool,
/// coalesced identical requests) behind newline-delimited JSON-RPC.
/// Runs until a client sends `shutdown`.
fn serve(opts: ServeOpts) -> Result<ExitCode, String> {
    // Fail fast on an unservable corpus (nonexistent path, no .c files)
    // before binding anything.
    ofence::collect_sources(&opts.run.paths)?;
    let session = Arc::new(ofence::Session::new(ofence::SessionOptions {
        config: opts.run.config.clone(),
        paths: opts.run.paths.clone(),
        cache_dir: cache_dir_of(&opts.run),
        history_dir: history_dir_of(&opts.run),
    }));
    let metrics = match &opts.metrics {
        Some(addr) => {
            let s = ofence::obs::serve::serve(addr, session.live())
                .map_err(|e| format!("--metrics: {e}"))?;
            println!("serve: serving /metrics and /health on http://{}", s.addr());
            Some(s)
        }
        None => None,
    };
    let server = ofence::server::serve(&opts.addr, session).map_err(|e| format!("--addr: {e}"))?;
    // Scripts read the bound address back from this line (port 0 lets
    // the OS pick) — same contract as watch's --serve-metrics print.
    println!("serve: listening on {}", server.addr());
    while !server.stopped() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    server.shutdown();
    drop(metrics);
    println!("serve: shut down");
    Ok(ExitCode::SUCCESS)
}

/// `ofence call` — one-shot daemon client: send a single request, print
/// the `result` document pretty-printed (so `call ADDR analyze` output
/// is comparable to `analyze --json`), exit non-zero on error responses.
fn call(opts: CallOpts) -> Result<ExitCode, String> {
    let params: Option<serde_json::Value> = match &opts.params {
        Some(text) => {
            Some(serde_json::from_str(text).map_err(|e| format!("--params is not JSON: {e}"))?)
        }
        None => None,
    };
    let request = match params {
        Some(p) => serde_json::json!({ "id": 0, "method": opts.method, "params": p }),
        None => serde_json::json!({ "id": 0, "method": opts.method }),
    };
    let response = rpc_once(&opts.addr, &request)?;
    if response["ok"] == true {
        println!(
            "{}",
            serde_json::to_string_pretty(&response["result"]).unwrap()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        Err(rpc_error_of(&response))
    }
}

/// Send one newline-delimited JSON-RPC request and read the one-line
/// response (the `call` / `trace` transport).
fn rpc_once(addr: &str, request: &serde_json::Value) -> Result<serde_json::Value, String> {
    use std::io::{BufRead, BufReader, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut line = serde_json::to_string(request).unwrap();
    line.push('\n');
    stream
        .write_all(line.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader
        .read_line(&mut response)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    if response.is_empty() {
        return Err(format!("{addr}: connection closed before a response"));
    }
    serde_json::from_str(&response).map_err(|e| format!("malformed response: {e}"))
}

/// Render an error response, including the server-assigned request id
/// so the failure can be traced with `ofence trace`.
fn rpc_error_of(response: &serde_json::Value) -> String {
    let mut msg = format!(
        "server error ({}): {}",
        response["error"]["code"].as_str().unwrap_or("unknown"),
        response["error"]["message"].as_str().unwrap_or("?")
    );
    if let Some(id) = response["request_id"].as_str() {
        if !id.is_empty() {
            msg.push_str(&format!(" [request {id}]"));
        }
    }
    msg
}

/// `ofence trace` — fetch the captured span tree of a completed daemon
/// request and render it as an indented per-span duration tree, the way
/// `explain` renders pairing decisions.
fn trace(opts: TraceOpts) -> Result<ExitCode, String> {
    let request = serde_json::json!({
        "id": 0,
        "method": "trace",
        "params": { "request_id": opts.request_id },
    });
    let response = rpc_once(&opts.addr, &request)?;
    if response["ok"] != true {
        return Err(rpc_error_of(&response));
    }
    let doc = &response["result"];
    if opts.json {
        println!("{}", serde_json::to_string_pretty(doc).unwrap());
    } else {
        print!("{}", render_trace(doc));
    }
    Ok(ExitCode::SUCCESS)
}

/// Pretty-print a trace document (`/debug/trace/<id>` shape): header
/// lines, then the span tree with per-span durations; at each level the
/// slowest child is flagged so the hot path reads top to bottom.
fn render_trace(doc: &serde_json::Value) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "request {} ({}): {} in {} µs\n",
        doc["request_id"].as_str().unwrap_or("?"),
        doc["method"].as_str().unwrap_or("?"),
        doc["outcome"].as_str().unwrap_or("?"),
        doc["latency_us"].as_u64().unwrap_or(0),
    ));
    if let Some(run_id) = doc["run_id"].as_str() {
        let via = if doc["coalesced"] == true {
            " (coalesced into the leader's analysis)"
        } else {
            ""
        };
        out.push_str(&format!("run: {run_id}{via}\n"));
    }
    out.push_str(&format!(
        "spans: {}\n",
        doc["span_count"].as_u64().unwrap_or(0)
    ));
    if let Some(roots) = doc["spans"].as_array() {
        if !roots.is_empty() {
            out.push('\n');
            render_trace_nodes(&mut out, roots, 1, false);
        }
    }
    out
}

fn render_trace_nodes(
    out: &mut String,
    nodes: &[serde_json::Value],
    depth: usize,
    mark_slowest: bool,
) {
    let slowest = nodes
        .iter()
        .map(|n| n["dur_us"].as_u64().unwrap_or(0))
        .max()
        .unwrap_or(0);
    for node in nodes {
        let dur = node["dur_us"].as_u64().unwrap_or(0);
        let mut line = format!(
            "{}{} {} µs",
            "  ".repeat(depth),
            node["name"].as_str().unwrap_or("?"),
            dur,
        );
        if let Some(attrs) = node["attrs"].as_object() {
            if !attrs.is_empty() {
                let rendered: Vec<String> = attrs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                    .collect();
                line.push_str(&format!(" [{}]", rendered.join(" ")));
            }
        }
        // Flag the slowest sibling only where there is a choice to make.
        if mark_slowest && nodes.len() > 1 && dur == slowest {
            line.push_str("  <- slowest");
        }
        out.push_str(&line);
        out.push('\n');
        if let Some(children) = node["children"].as_array() {
            render_trace_nodes(out, children, depth + 1, true);
        }
    }
}

/// `ofence diff` — classify findings across two runs by their stable
/// fingerprints. Operands are ledger run ids or `--json` report files;
/// with `--baseline FILE` the given paths are analyzed and compared to
/// the baseline. Exit code follows `--fail-on` (default `new`).
fn diff(opts: DiffOpts) -> Result<ExitCode, String> {
    let report = match (&opts.old, &opts.new) {
        (Some(old), Some(new)) => {
            let old_records = resolve_operand(&opts.run, old)?;
            let new_records = resolve_operand(&opts.run, new)?;
            ofence::classify(&old_records, &new_records)
        }
        _ => {
            let path = opts.run.baseline.as_deref().expect("parser guarantees");
            let baseline = ofence::diffing::load_baseline(Path::new(path))?;
            let mut result = run_engine_raw(&opts.run)?;
            let records = ofence::finding_records(&result.deviations, &result.sites, &result.files);
            let report = ofence::classify(&baseline.findings, &records);
            result.obs = result.obs.with_counters([
                ("findings_new".to_string(), report.new.len() as u64),
                ("findings_fixed".to_string(), report.fixed.len() as u64),
            ]);
            write_observability(&opts.run, &result)?;
            write_sarif(&opts.run, &result)?;
            append_history(&opts.run, &result, &records)?;
            report
        }
    };
    if opts.run.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.to_json()).unwrap()
        );
    } else {
        print!("{}", report.render());
    }
    let fail = match opts.run.fail_on.unwrap_or(FailOn::New) {
        FailOn::Any => !report.new.is_empty() || !report.unchanged.is_empty(),
        FailOn::New => !report.new.is_empty(),
        FailOn::None => false,
    };
    Ok(if fail {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Resolve a diff operand: an existing file is parsed as a JSON document
/// (report, baseline, or ledger record); anything else is looked up in
/// the run ledger by id or unambiguous prefix.
fn resolve_operand(opts: &RunOpts, operand: &str) -> Result<Vec<FindingRecord>, String> {
    let path = Path::new(operand);
    if path.is_file() {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{operand}: {e}"))?;
        let doc: serde_json::Value =
            serde_json::from_str(&text).map_err(|e| format!("{operand}: not JSON: {e}"))?;
        return ofence::diffing::records_from_json(&doc).map_err(|e| format!("{operand}: {e}"));
    }
    let dir = history_dir_of(opts).ok_or_else(|| {
        format!("`{operand}` is not a file, and --no-history disables run-id lookup")
    })?;
    Ok(ofence::history::find(&dir, operand)?.findings)
}

/// `ofence baseline write` — analyze the given paths and snapshot every
/// current finding so future runs can gate on regressions only.
fn baseline_write(opts: BaselineWriteOpts) -> Result<ExitCode, String> {
    let result = run_engine(&opts.run)?;
    let records = ofence::finding_records(&result.deviations, &result.sites, &result.files);
    let count = records.len();
    let baseline = ofence::Baseline::new(&result.run_id, records);
    ofence::diffing::write_baseline(Path::new(&opts.out), &baseline)
        .map_err(|e| format!("baseline: {e}"))?;
    println!(
        "baseline: recorded {count} finding(s) from {} to {}",
        result.run_id, opts.out
    );
    Ok(ExitCode::SUCCESS)
}

/// `ofence patch` — print (or apply) the generated fixes.
fn patch(opts: RunOpts) -> Result<ExitCode, String> {
    let result = run_engine(&opts)?;
    let patches: Vec<(usize, Patch)> = result
        .deviations
        .iter()
        .filter_map(|d| {
            ofence::patch::synthesize(d, &result.files[d.site.file]).map(|p| (d.site.file, p))
        })
        .collect();
    if opts.json {
        let payload: Vec<_> = patches.iter().map(|(_, p)| p).collect();
        println!("{}", serde_json::to_string_pretty(&payload).unwrap());
    } else {
        for (_, p) in &patches {
            println!("{}", p.title);
            println!("    {}", p.explanation);
            println!("{}", p.diff);
        }
        if patches.is_empty() {
            println!("nothing to patch.");
        }
    }
    if opts.apply {
        apply_grouped(&result, patches.iter().map(|(f, p)| (*f, p.edits.clone())))?;
    }
    Ok(if patches.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// `ofence annotate` — §7 READ_ONCE/WRITE_ONCE patches.
fn annotate(opts: RunOpts) -> Result<ExitCode, String> {
    let result = run_engine(&opts)?;
    // Compose per file so nested read/write annotations merge.
    let mut by_file: std::collections::BTreeMap<usize, Vec<&ofence::Deviation>> =
        Default::default();
    for d in &result.annotations {
        by_file.entry(d.site.file).or_default().push(d);
    }
    let mut grouped: Vec<(usize, Vec<ofence::patch::Edit>)> = Vec::new();
    for (&file, devs) in &by_file {
        let fa = &result.files[file];
        let edits = ofence::annotate::file_annotation_edits(devs, fa);
        if !edits.is_empty() {
            grouped.push((file, edits));
        }
    }
    if opts.json {
        let payload: Vec<_> = result.annotations.iter().collect();
        println!("{}", serde_json::to_string_pretty(&payload).unwrap());
    } else {
        for (file, edits) in &grouped {
            let fa = &result.files[*file];
            if let Some(fixed) = ofence::apply_edits(&fa.source, edits) {
                println!("{}", ofence::patch::line_diff(&fa.source, &fixed, &fa.name));
            }
        }
        if grouped.is_empty() {
            println!("all concurrent accesses are already annotated.");
        }
    }
    if opts.apply {
        apply_grouped(&result, grouped.into_iter())?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `ofence stats` — statistics only.
fn stats(opts: RunOpts) -> Result<ExitCode, String> {
    let result = run_engine(&opts)?;
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&result.stats).unwrap());
    } else {
        println!("{}", result.stats.render());
    }
    Ok(ExitCode::SUCCESS)
}

/// `ofence explain <file:line>` — replay the pairing decision for one
/// barrier: candidate set, shared-object overlap, weights, outcome.
fn explain(opts: ExplainOpts) -> Result<ExitCode, String> {
    let result = run_engine(&opts.run)?;
    // Match by exact name, then suffix, then basename, so both
    // `ofence explain dir/f.c:12 dir/` and `ofence explain f.c:12 dir/`
    // work.
    let matches_file = |name: &str| {
        name == opts.file
            || name.ends_with(&format!("/{}", opts.file))
            || opts.file.ends_with(&format!("/{name}"))
    };
    let site = result
        .sites
        .iter()
        .find(|s| matches_file(&s.site.file_name) && s.site.line == opts.line);
    let Some(site) = site else {
        let mut lines: Vec<String> = result
            .sites
            .iter()
            .filter(|s| matches_file(&s.site.file_name))
            .map(|s| format!("{}:{} ({})", s.site.file_name, s.site.line, s.kind.name()))
            .collect();
        lines.sort();
        return Err(if lines.is_empty() {
            format!("no barrier found in `{}`", opts.file)
        } else {
            format!(
                "no barrier at {}:{}; barriers in that file:\n  {}",
                opts.file,
                opts.line,
                lines.join("\n  ")
            )
        });
    };
    let explanation =
        ofence::explain_site_with(&result.sites, &result.pairing, &opts.run.config, site.id)
            .expect("site id comes from this result");
    if opts.run.json {
        println!("{}", serde_json::to_string_pretty(&explanation).unwrap());
    } else {
        print!("{}", explanation.render());
    }
    Ok(ExitCode::SUCCESS)
}

/// `ofence watch` — poll the given paths and re-run the incremental
/// analysis whenever a file's content hash changes, printing only the
/// deviation delta (`+` new findings, `-` fixed ones). The engine — and
/// therefore the in-memory per-file cache — stays alive across runs, so
/// each re-analysis costs roughly one changed file, not the whole tree.
fn watch(opts: WatchOpts) -> Result<ExitCode, String> {
    let (mut engine, events) = build_engine(&opts.run)?;
    let cache_dir = cache_dir_of(&opts.run);
    if let Some(dir) = &cache_dir {
        load_cache(&mut engine, dir);
    }

    // `--serve-metrics`: live /metrics + /health on a background thread,
    // fed after every iteration. The bound address is printed (port 0
    // lets the OS pick, so scripts need to read it back).
    let live = Arc::new(ofence::obs::Live::new());
    let server = match &opts.serve_metrics {
        Some(addr) => {
            let s = ofence::obs::serve::serve(addr, live.clone())
                .map_err(|e| format!("--serve-metrics: {e}"))?;
            println!("watch: serving /metrics and /health on http://{}", s.addr());
            Some(s)
        }
        None => None,
    };

    // Fail fast on unwatchable paths (nonexistent directory, no .c files)
    // before entering the loop.
    let mut sources = collect_sources(&opts.run.paths)?;
    let hash_all = |sources: &[ofence::SourceFile]| -> Vec<(String, u64)> {
        sources
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    ofence::cache::content_hash(s.content.as_bytes()),
                )
            })
            .collect()
    };
    let mut last_hashes = hash_all(&sources);
    // A baseline seeds the known set, so long-known findings don't show
    // up as `+` noise on the first iteration.
    let mut known: Vec<FindingRecord> = match opts.run.baseline.as_deref() {
        Some(p) => ofence::diffing::load_baseline(Path::new(p))?.findings,
        None => Vec::new(),
    };
    let mut runs = 0u64;
    // Session-cumulative iteration-duration histogram: exported in every
    // iteration's metrics and on /metrics, so scrapers see the full
    // session's latency distribution, not just the last run.
    let mut iteration_hist = ofence::obs::Histogram::default();

    loop {
        runs += 1;
        let iteration_start = std::time::Instant::now();
        // The recorder resets per run, so queue the cumulative count:
        // every snapshot (and metrics file) reports total runs so far.
        engine.queue_count("watch_iterations", runs);
        let mut result = engine.analyze_incremental(&sources);
        if let Some(dir) = &cache_dir {
            save_cache(&mut engine, &opts.run, dir)?;
        }

        // The same fingerprint diff engine `ofence diff` uses: watch and
        // diff can never disagree about what counts as a new finding.
        let records = ofence::finding_records(&result.deviations, &result.sites, &result.files);
        let delta = ofence::classify(&known, &records);
        result.obs = result.obs.with_counters([
            ("findings_new".to_string(), delta.new.len() as u64),
            ("findings_fixed".to_string(), delta.fixed.len() as u64),
        ]);
        let iteration_us = iteration_start.elapsed().as_micros() as u64;
        iteration_hist.observe(iteration_us);
        result.obs = result
            .obs
            .with_histogram("iteration_duration_us", iteration_hist.clone());
        write_observability(&opts.run, &result)?;
        append_history(&opts.run, &result, &records)?;
        append_perf(&opts.run, &result, Some(iteration_us))?;
        live.publish(&result.obs, records.len() as u64, iteration_us);
        // Flush the event stream at every iteration boundary, so a
        // consumer tailing `--events-out` (or a watch session that gets
        // killed while polling) always sees complete, balanced events.
        engine.recorder().flush_sinks();
        println!(
            "watch: run {} — {} files, {} deviations ({} new, {} fixed)",
            runs,
            sources.len(),
            records.len(),
            delta.new.len(),
            delta.fixed.len()
        );
        // `--slow-files N` opts into a per-iteration hot-file listing
        // (same ranking `analyze` prints in its stats block).
        if opts.run.slow_files.is_some() && !result.stats.slowest_files.is_empty() {
            let listing: Vec<String> = result
                .stats
                .slowest_files
                .iter()
                .map(|(f, us)| format!("{f} ({us}us)"))
                .collect();
            println!("  slowest: {}", listing.join(", "));
        }
        for r in &delta.new {
            println!("  + {}", r.render_line());
        }
        for r in &delta.fixed {
            println!("  - {}", r.render_line());
        }
        known = records;

        if opts.max_iterations.is_some_and(|max| runs >= max) {
            finish_events(&engine, &events);
            if let Some(s) = server {
                s.shutdown();
            }
            return Ok(ExitCode::SUCCESS);
        }

        // Poll until something changes.
        loop {
            std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
            sources = collect_sources(&opts.run.paths)?;
            let hashes = hash_all(&sources);
            if hashes != last_hashes {
                last_hashes = hashes;
                break;
            }
        }
    }
}

/// `ofence gen` — write a synthetic corpus to disk for experimentation.
fn gen(opts: GenOpts) -> Result<ExitCode, String> {
    if let Some(name) = &opts.tier {
        let spec = ofence_corpus::CorpusSpec::tier(name, opts.seed)
            .ok_or_else(|| format!("unknown tier `{name}` (expected 1200, 12k, or 100k)"))?;
        return write_corpus(&ofence_corpus::generate(&spec), &opts.out);
    }
    let spec = ofence_corpus::CorpusSpec {
        seed: opts.seed,
        files: opts.files,
        patterns_per_file: 1,
        noise_per_file: 2,
        decoy_pairs: (opts.files / 20).max(1),
        far_decoy_pairs: 0,
        lone_per_file: 1,
        split_fraction: 0.2,
        reread_decoys: 0,
        unfenced_decoys: 0,
        filler_files: 0,
        cross_file_chains: opts.chains,
        chain_depth: opts.chain_depth,
        chain_bugs: opts.chain_bugs,
        bugs: if opts.with_bugs {
            ofence_corpus::BugPlan {
                misplaced: (opts.files / 10).max(1),
                repeated_read: (opts.files / 20).max(1),
                wrong_type: 1,
                unneeded: (opts.files / 10).max(1),
                missing_barrier: (opts.files / 20).max(1),
            }
        } else {
            ofence_corpus::BugPlan::none()
        },
    };
    let corpus = ofence_corpus::generate(&spec);
    write_corpus(&corpus, &opts.out)
}

/// Write a generated corpus (plus its ground-truth manifest) to `out`.
fn write_corpus(corpus: &ofence_corpus::Corpus, out: &str) -> Result<ExitCode, String> {
    let out = std::path::Path::new(out);
    let mut made_dirs = std::collections::HashSet::new();
    for f in &corpus.files {
        let path = out.join(&f.name);
        if let Some(parent) = path.parent() {
            // One mkdir per distinct directory, not per file: the 100k
            // tier writes 100k files into a handful of directories.
            if made_dirs.insert(parent.to_path_buf()) {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("{}: {e}", parent.display()))?;
            }
        }
        std::fs::write(&path, &f.content).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let manifest = serde_json::to_string_pretty(&corpus.manifest).unwrap();
    std::fs::write(out.join("manifest.json"), manifest).map_err(|e| format!("manifest: {e}"))?;
    println!(
        "wrote {} files (+ manifest.json with ground truth) to {}",
        corpus.files.len(),
        out.display()
    );
    Ok(ExitCode::SUCCESS)
}

/// Apply grouped edits to the files on disk.
fn apply_grouped(
    result: &AnalysisResult,
    groups: impl Iterator<Item = (usize, Vec<ofence::patch::Edit>)>,
) -> Result<(), String> {
    // Merge all edits per file, dropping conflicts conservatively.
    let mut by_file: std::collections::BTreeMap<usize, Vec<ofence::patch::Edit>> =
        Default::default();
    for (file, edits) in groups {
        by_file.entry(file).or_default().extend(edits);
    }
    for (file, mut edits) in by_file {
        let fa = &result.files[file];
        edits.sort_by_key(|e| (e.span.lo, e.span.hi));
        edits.dedup();
        let mut kept: Vec<ofence::patch::Edit> = Vec::new();
        let mut dropped = 0;
        for e in edits {
            if kept
                .last()
                .map(|prev| e.span.lo >= prev.span.hi)
                .unwrap_or(true)
            {
                kept.push(e);
            } else {
                dropped += 1;
            }
        }
        if dropped > 0 {
            eprintln!(
                "{}: {dropped} conflicting edit(s) skipped — re-run after applying",
                fa.name
            );
        }
        let fixed = ofence::apply_edits(&fa.source, &kept)
            .ok_or_else(|| format!("{}: edits failed to apply", fa.name))?;
        std::fs::write(&fa.name, fixed).map_err(|e| format!("{}: {e}", fa.name))?;
        println!("patched {}", fa.name);
    }
    Ok(())
}
