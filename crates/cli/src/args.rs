//! Argument parsing (hand-rolled; the tool has a small, stable surface).

use ofence::AnalysisConfig;

pub const USAGE: &str = "\
usage:
  ofence analyze  <paths...> [--json] [output options] [window options]
  ofence patch    <paths...> [--apply] [--json] [window options]
  ofence annotate <paths...> [--apply] [--json] [window options]
  ofence stats    <paths...> [--json] [window options]
  ofence explain  <file:line> <paths...> [--json] [window options]
  ofence gen      --out DIR [--files N] [--seed S] [--bugs]

output options:
  --trace-out FILE   write a Chrome-tracing JSON trace of the run
  --metrics-out FILE write Prometheus text-format metrics of the run

window options:
  --write-window N   statements explored around write barriers (default 5)
  --read-window N    statements explored around read barriers (default 50)
  --no-ipc           disable implicit wake-up barrier detection
  --no-expand        disable callee/caller expansion
  --missing          enable the missing-barrier detector (dataflow)
  --no-outlier       report all fence-less readers, not just outliers
  --window-reread    use the bounded-window re-read heuristic (no dataflow)

`explain` replays the pairing decision for the barrier at <file:line>:
the candidate set, shared-object overlap, distance-product weights, and
why the winner won (or why the barrier stayed unpaired).";

/// A parsed invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    Analyze(RunOpts),
    Patch(RunOpts),
    Annotate(RunOpts),
    Stats(RunOpts),
    Explain(ExplainOpts),
    Gen(GenOpts),
}

/// Options shared by the analysis subcommands.
#[derive(Debug, PartialEq)]
pub struct RunOpts {
    pub paths: Vec<String>,
    pub json: bool,
    pub apply: bool,
    /// Write a Chrome-tracing JSON trace of the run to this file.
    pub trace_out: Option<String>,
    /// Write Prometheus text-format metrics of the run to this file.
    pub metrics_out: Option<String>,
    pub config: AnalysisConfig,
}

/// `ofence explain <file:line> <paths...>`.
#[derive(Debug, PartialEq)]
pub struct ExplainOpts {
    /// Target barrier location, as given (`file:line`).
    pub file: String,
    pub line: u32,
    pub run: RunOpts,
}

#[derive(Debug, PartialEq)]
pub struct GenOpts {
    pub out: String,
    pub files: usize,
    pub seed: u64,
    pub with_bugs: bool,
}

pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(sub) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "analyze" => Ok(Command::Analyze(parse_run(rest)?)),
        "patch" => Ok(Command::Patch(parse_run(rest)?)),
        "annotate" => Ok(Command::Annotate(parse_run(rest)?)),
        "stats" => Ok(Command::Stats(parse_run(rest)?)),
        "explain" => Ok(Command::Explain(parse_explain(rest)?)),
        "gen" => Ok(Command::Gen(parse_gen(rest)?)),
        "--help" | "-h" | "help" => Err("".into()),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_run(argv: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        paths: Vec::new(),
        json: false,
        apply: false,
        trace_out: None,
        metrics_out: None,
        config: AnalysisConfig::default(),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => opts.json = true,
            "--apply" => opts.apply = true,
            "--trace-out" => {
                i += 1;
                opts.trace_out = Some(argv.get(i).ok_or("--trace-out needs a file")?.to_string());
            }
            "--metrics-out" => {
                i += 1;
                opts.metrics_out =
                    Some(argv.get(i).ok_or("--metrics-out needs a file")?.to_string());
            }
            "--no-ipc" => opts.config.implicit_ipc = false,
            "--no-expand" => {
                opts.config.callee_expansion = false;
                opts.config.caller_expansion = false;
            }
            "--missing" => opts.config.detect_missing = true,
            "--no-outlier" => opts.config.outlier_rule = false,
            "--window-reread" => opts.config.dataflow_reread = false,
            "--write-window" => {
                i += 1;
                opts.config.write_window = num(argv.get(i), "--write-window")?;
            }
            "--read-window" => {
                i += 1;
                opts.config.read_window = num(argv.get(i), "--read-window")?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => opts.paths.push(path.to_string()),
        }
        i += 1;
    }
    if opts.paths.is_empty() {
        return Err("no input paths given".into());
    }
    Ok(opts)
}

fn parse_explain(argv: &[String]) -> Result<ExplainOpts, String> {
    let Some(target) = argv.first() else {
        return Err("explain requires a <file:line> target".into());
    };
    let Some((file, line)) = target.rsplit_once(':') else {
        return Err(format!("`{target}` is not a <file:line> target"));
    };
    let line: u32 = line
        .parse()
        .map_err(|_| format!("`{target}` is not a <file:line> target"))?;
    let run = parse_run(&argv[1..])?;
    Ok(ExplainOpts {
        file: file.to_string(),
        line,
        run,
    })
}

fn parse_gen(argv: &[String]) -> Result<GenOpts, String> {
    let mut opts = GenOpts {
        out: String::new(),
        files: 20,
        seed: 1,
        with_bugs: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                opts.out = argv.get(i).ok_or("--out needs a directory")?.to_string();
            }
            "--files" => {
                i += 1;
                opts.files = num(argv.get(i), "--files")? as usize;
            }
            "--seed" => {
                i += 1;
                opts.seed = num64(argv.get(i), "--seed")?;
            }
            "--bugs" => opts.with_bugs = true,
            other => return Err(format!("unknown gen option `{other}`")),
        }
        i += 1;
    }
    if opts.out.is_empty() {
        return Err("gen requires --out DIR".into());
    }
    Ok(opts)
}

fn num(v: Option<&String>, flag: &str) -> Result<u32, String> {
    v.ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

fn num64(v: Option<&String>, flag: &str) -> Result<u64, String> {
    v.ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn analyze_with_paths() {
        let cmd = parse(&argv("analyze a.c dir/")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.paths, vec!["a.c", "dir/"]);
                assert!(!o.json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn windows_override_config() {
        let cmd = parse(&argv("stats x.c --write-window 3 --read-window 20")).unwrap();
        match cmd {
            Command::Stats(o) => {
                assert_eq!(o.config.write_window, 3);
                assert_eq!(o.config.read_window, 20);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn toggles() {
        let cmd = parse(&argv("patch x.c --apply --no-ipc --no-expand --json")).unwrap();
        match cmd {
            Command::Patch(o) => {
                assert!(o.apply && o.json);
                assert!(!o.config.implicit_ipc);
                assert!(!o.config.callee_expansion);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_detector_flags() {
        let cmd = parse(&argv("analyze x.c --missing --no-outlier --window-reread")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert!(o.config.detect_missing);
                assert!(!o.config.outlier_rule);
                assert!(!o.config.dataflow_reread);
            }
            other => panic!("{other:?}"),
        }
        // Defaults stay conservative.
        let cmd = parse(&argv("analyze x.c")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert!(!o.config.detect_missing);
                assert!(o.config.outlier_rule);
                assert!(o.config.dataflow_reread);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gen_options() {
        let cmd = parse(&argv("gen --out /tmp/x --files 5 --seed 9 --bugs")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen(GenOpts {
                out: "/tmp/x".into(),
                files: 5,
                seed: 9,
                with_bugs: true
            })
        );
    }

    #[test]
    fn trace_and_metrics_outputs() {
        let cmd = parse(&argv(
            "analyze x.c --trace-out trace.json --metrics-out metrics.txt",
        ))
        .unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.trace_out.as_deref(), Some("trace.json"));
                assert_eq!(o.metrics_out.as_deref(), Some("metrics.txt"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_target() {
        let cmd = parse(&argv("explain writer.c:12 src/ --write-window 3")).unwrap();
        match cmd {
            Command::Explain(o) => {
                assert_eq!(o.file, "writer.c");
                assert_eq!(o.line, 12);
                assert_eq!(o.run.paths, vec!["src/"]);
                assert_eq!(o.run.config.write_window, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze x.c --write-window")).is_err());
        assert!(parse(&argv("analyze x.c --trace-out")).is_err());
        assert!(parse(&argv("gen --files 3")).is_err());
        assert!(parse(&argv("explain")).is_err());
        assert!(parse(&argv("explain not-a-target x.c")).is_err());
        assert!(parse(&argv("explain f.c:12")).is_err()); // no paths
    }
}
