//! Argument parsing (hand-rolled; the tool has a small, stable surface).

use ofence::{AnalysisConfig, FailOn};

pub const USAGE: &str = "\
usage:
  ofence analyze  <paths...> [--json] [--sarif-out FILE] [--baseline FILE]
                  [--fail-on new|any|none] [output options] [window options]
  ofence patch    <paths...> [--apply] [--json] [window options]
  ofence annotate <paths...> [--apply] [--json] [window options]
  ofence stats    <paths...> [--json] [window options]
  ofence explain  <file:line> <paths...> [--json] [window options]
  ofence watch    <paths...> [--interval-ms N] [--max-iterations N]
                  [--serve-metrics ADDR] [...]
  ofence serve    <paths...> [--addr HOST:PORT] [--metrics HOST:PORT]
                  [cache/history/window options]
  ofence call     <host:port> <method> [--params JSON]
  ofence trace    <host:port> <request-id> [--json]
  ofence diff     <old> <new> [--json] [--history-dir DIR]
  ofence diff     --baseline FILE <paths...> [--json] [window options]
  ofence baseline write <paths...> [--out FILE] [window options]
  ofence perf     [--ledger FILE] [--history-dir DIR] [--last N]
                  [--gate] [--max-regress-pct P] [--requests] [--json]
  ofence gen      --out DIR [--files N | --tier 1200|12k|100k] [--seed S]
                  [--bugs] [--chains N] [--chain-depth D] [--chain-bugs B]

output options:
  --trace-out FILE   write a Chrome-tracing JSON trace of the run
  --metrics-out FILE write Prometheus text-format metrics of the run
  --events-out FILE  stream span/counter events as NDJSON while the
                     analysis runs (`-` for stdout)
  --sarif-out FILE   write findings as SARIF 2.1.0 with stable
                     fingerprints in partialFingerprints
  --slow-files N     list the top N slowest files in stats output
                     (default 5)

triage options (analyze and watch):
  --baseline FILE    compare findings against this baseline; known
                     findings are reported as baselined
  --fail-on POLICY   exit non-zero on: new (findings not in the
                     baseline), any (default; any finding), none
  --history-dir DIR  append the run record to DIR/history.jsonl
                     (default: .ofence)
  --no-history       do not write the run ledger

cache options (analysis subcommands and watch):
  --cache-dir DIR    persist the per-file analysis cache here
                     (default: .ofence-cache)
  --no-cache         do not read or write the on-disk cache

window options:
  --write-window N   statements explored around write barriers (default 5)
  --read-window N    statements explored around read barriers (default 50)
  --no-ipc           disable implicit wake-up barrier detection
  --no-expand        disable callee/caller expansion
  --ipa-depth N      compose function summaries across up to N call
                     levels (inter-procedural pairing; default 0 = off)
  --missing          enable the missing-barrier detector (dataflow)
  --no-outlier       report all fence-less readers, not just outliers
  --window-reread    use the bounded-window re-read heuristic (no dataflow)

`explain` replays the pairing decision for the barrier at <file:line>:
the candidate set, shared-object overlap, distance-product weights, and
why the winner won (or why the barrier stayed unpaired).

`watch` polls the given paths (mtime-free content hashing, no inotify
dependency) and re-runs the incremental analysis when a file changes,
printing only the finding delta (+ new, - fixed). `--interval-ms`
sets the poll period (default 500); `--max-iterations` exits after N
analysis runs (default: run until interrupted). `--serve-metrics ADDR`
(e.g. 127.0.0.1:9464, port 0 for an OS-picked port) serves live
`GET /metrics` (Prometheus text) and `GET /health` (JSON) from the
latest iteration on a background thread.

`serve` runs the analysis daemon: newline-delimited JSON-RPC over TCP
(default --addr 127.0.0.1:0; the bound address is printed). Concurrent
clients share one warm engine cache and worker pool, and identical
overlapping requests coalesce into a single analysis. Methods: ping,
status, trace, analyze, analyze-file, explain, diff, baseline-gate,
shutdown. `--metrics HOST:PORT` additionally serves live
`GET /metrics` + `GET /health` + `GET /debug/requests` +
`GET /debug/trace/<request-id>`. `call` is the matching one-shot
client: it sends one request and pretty-prints the `result` document
(identical to the corresponding one-shot subcommand's `--json`
output), exiting non-zero on an error response (the message includes
the server-assigned request id, for `ofence trace`).

`trace` fetches the captured span tree of a completed daemon request
by its request id (every response envelope carries one) and renders
it as an indented tree with per-span durations, marking the slowest
child at each level; `--json` prints the raw tree document instead.

`perf` reads the performance ledger (DIR/perf.jsonl, appended by every
analysis run and watch iteration) and prints the last `--last N`
records as a trend table (default 10). With `--gate`, the newest
record is compared against the median elapsed time of earlier
comparable records (same config fingerprint, corpus size, and
cold/warm mode) and the command exits non-zero when it is more than
`--max-regress-pct P` percent slower (default 10). With `--requests`,
the daemon request ledger (DIR/requests.jsonl, appended by every
completed `serve` request) is read instead and summarised as a
per-method latency table (count, errors, coalesced, p50/p95/p99).

`diff` classifies findings as new / fixed / unchanged by their stable
fingerprints. <old> and <new> are ledger run ids (prefixes work) or
`analyze --json` report files; with `--baseline FILE` the given paths
are analyzed and compared against the baseline instead.

`baseline write` analyzes the given paths and records every current
finding (default: ofence-baseline.json) so `--fail-on=new` only gates
on regressions. Inline `// ofence-ignore` comments suppress a finding
at its source line.";

/// A parsed invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    Analyze(RunOpts),
    Patch(RunOpts),
    Annotate(RunOpts),
    Stats(RunOpts),
    Explain(ExplainOpts),
    Watch(WatchOpts),
    Serve(ServeOpts),
    Call(CallOpts),
    Trace(TraceOpts),
    Diff(DiffOpts),
    BaselineWrite(BaselineWriteOpts),
    Perf(PerfOpts),
    Gen(GenOpts),
}

/// Options shared by the analysis subcommands.
#[derive(Debug, PartialEq)]
pub struct RunOpts {
    pub paths: Vec<String>,
    pub json: bool,
    pub apply: bool,
    /// Write a Chrome-tracing JSON trace of the run to this file.
    pub trace_out: Option<String>,
    /// Write Prometheus text-format metrics of the run to this file.
    pub metrics_out: Option<String>,
    /// Stream NDJSON span/counter events here while the analysis runs
    /// (`-` for stdout).
    pub events_out: Option<String>,
    /// Top-N slowest files to list in stats output (`--slow-files`);
    /// `None` means the engine default of 5.
    pub slow_files: Option<usize>,
    /// Write findings as a SARIF 2.1.0 document to this file.
    pub sarif_out: Option<String>,
    /// Compare findings against this baseline file.
    pub baseline: Option<String>,
    /// Exit-code policy; `None` means the subcommand's default.
    pub fail_on: Option<FailOn>,
    /// Run-ledger directory (`--history-dir`); `None` means the default
    /// `.ofence` directory.
    pub history_dir: Option<String>,
    /// `--no-history`: skip appending to the run ledger.
    pub no_history: bool,
    /// Where to persist the per-file analysis cache (`--cache-dir`);
    /// `None` means the default `.ofence-cache` directory.
    pub cache_dir: Option<String>,
    /// `--no-cache`: skip reading and writing the on-disk cache.
    pub no_cache: bool,
    pub config: AnalysisConfig,
}

/// `ofence diff` — compare two runs (or the current run vs a baseline).
#[derive(Debug, PartialEq)]
pub struct DiffOpts {
    /// Two-operand mode: ledger run ids or `--json` report files.
    /// Empty in `--baseline` mode (then `run.paths` holds the sources).
    pub old: Option<String>,
    pub new: Option<String>,
    pub run: RunOpts,
}

/// `ofence baseline write` — snapshot current findings to a file.
#[derive(Debug, PartialEq)]
pub struct BaselineWriteOpts {
    /// Output file (default `ofence-baseline.json`).
    pub out: String,
    pub run: RunOpts,
}

/// `ofence watch <paths...>` — poll for changes and re-analyze.
#[derive(Debug, PartialEq)]
pub struct WatchOpts {
    pub run: RunOpts,
    /// Poll period in milliseconds.
    pub interval_ms: u64,
    /// Exit after this many analysis runs (`None`: until interrupted).
    pub max_iterations: Option<u64>,
    /// Serve live `GET /metrics` + `GET /health` on this address
    /// (`--serve-metrics`, e.g. `127.0.0.1:9464`; port 0 lets the OS
    /// pick).
    pub serve_metrics: Option<String>,
}

/// `ofence serve <paths...>` — the long-running analysis daemon.
#[derive(Debug, PartialEq)]
pub struct ServeOpts {
    pub run: RunOpts,
    /// Listen address (`--addr`; default `127.0.0.1:0`, port 0 lets the
    /// OS pick — the bound address is printed).
    pub addr: String,
    /// Also serve live `GET /metrics` + `GET /health` here (`--metrics`).
    pub metrics: Option<String>,
}

/// `ofence call <host:port> <method>` — one-shot daemon client.
#[derive(Debug, PartialEq)]
pub struct CallOpts {
    pub addr: String,
    pub method: String,
    /// Raw JSON for the request's `params` field (`--params`).
    pub params: Option<String>,
}

/// `ofence trace <host:port> <request-id>` — fetch a captured request
/// trace from a live daemon and pretty-print its span tree.
#[derive(Debug, PartialEq)]
pub struct TraceOpts {
    pub addr: String,
    pub request_id: String,
    /// Print the raw trace document instead of the rendered tree.
    pub json: bool,
}

/// `ofence perf` — read the perf ledger as a trend table or CI gate.
#[derive(Debug, PartialEq)]
pub struct PerfOpts {
    /// Explicit ledger file; overrides `--history-dir`.
    pub ledger: Option<String>,
    /// History directory holding `perf.jsonl` (default `.ofence`).
    pub history_dir: Option<String>,
    /// Records to show in the trend table.
    pub last: usize,
    /// Gate mode: compare the newest record against the baseline median.
    pub gate: bool,
    /// Maximum tolerated slowdown in percent for `--gate`.
    pub max_regress_pct: f64,
    /// Read the daemon request ledger (`requests.jsonl`) instead and
    /// print per-method latency trends.
    pub requests: bool,
    pub json: bool,
}

/// `ofence explain <file:line> <paths...>`.
#[derive(Debug, PartialEq)]
pub struct ExplainOpts {
    /// Target barrier location, as given (`file:line`).
    pub file: String,
    pub line: u32,
    pub run: RunOpts,
}

#[derive(Debug, PartialEq)]
pub struct GenOpts {
    pub out: String,
    pub files: usize,
    pub seed: u64,
    pub with_bugs: bool,
    /// Cross-file call-chain instances (`--chains`).
    pub chains: usize,
    /// Call levels between each chain barrier and its accesses
    /// (`--chain-depth`, default 2).
    pub chain_depth: usize,
    /// Chain instances carrying a deep-callee misplaced read
    /// (`--chain-bugs`).
    pub chain_bugs: usize,
    /// Named throughput tier (`--tier 1200|12k|100k`): use the shared
    /// `CorpusSpec::tier` shape instead of `--files`, so the CLI, the
    /// scale bench, and CI all generate the same corpus.
    pub tier: Option<String>,
}

pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(sub) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "analyze" => Ok(Command::Analyze(parse_run(rest)?)),
        "patch" => Ok(Command::Patch(parse_run(rest)?)),
        "annotate" => Ok(Command::Annotate(parse_run(rest)?)),
        "stats" => Ok(Command::Stats(parse_run(rest)?)),
        "explain" => Ok(Command::Explain(parse_explain(rest)?)),
        "watch" => Ok(Command::Watch(parse_watch(rest)?)),
        "serve" => Ok(Command::Serve(parse_serve(rest)?)),
        "call" => Ok(Command::Call(parse_call(rest)?)),
        "trace" => Ok(Command::Trace(parse_trace(rest)?)),
        "diff" => Ok(Command::Diff(parse_diff(rest)?)),
        "baseline" => Ok(Command::BaselineWrite(parse_baseline(rest)?)),
        "perf" => Ok(Command::Perf(parse_perf(rest)?)),
        "gen" => Ok(Command::Gen(parse_gen(rest)?)),
        "--help" | "-h" | "help" => Err("".into()),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_run(argv: &[String]) -> Result<RunOpts, String> {
    let opts = parse_run_inner(argv)?;
    if opts.paths.is_empty() {
        return Err("no input paths given".into());
    }
    Ok(opts)
}

fn parse_run_inner(argv: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        paths: Vec::new(),
        json: false,
        apply: false,
        trace_out: None,
        metrics_out: None,
        events_out: None,
        slow_files: None,
        sarif_out: None,
        baseline: None,
        fail_on: None,
        history_dir: None,
        no_history: false,
        cache_dir: None,
        no_cache: false,
        config: AnalysisConfig::default(),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => opts.json = true,
            "--apply" => opts.apply = true,
            "--cache-dir" => {
                i += 1;
                opts.cache_dir = Some(
                    argv.get(i)
                        .ok_or("--cache-dir needs a directory")?
                        .to_string(),
                );
            }
            "--no-cache" => opts.no_cache = true,
            "--trace-out" => {
                i += 1;
                opts.trace_out = Some(argv.get(i).ok_or("--trace-out needs a file")?.to_string());
            }
            "--metrics-out" => {
                i += 1;
                opts.metrics_out =
                    Some(argv.get(i).ok_or("--metrics-out needs a file")?.to_string());
            }
            "--events-out" => {
                i += 1;
                opts.events_out = Some(argv.get(i).ok_or("--events-out needs a file")?.to_string());
            }
            "--slow-files" => {
                i += 1;
                opts.slow_files = Some(num(argv.get(i), "--slow-files")? as usize);
            }
            "--sarif-out" => {
                i += 1;
                opts.sarif_out = Some(argv.get(i).ok_or("--sarif-out needs a file")?.to_string());
            }
            "--baseline" => {
                i += 1;
                opts.baseline = Some(argv.get(i).ok_or("--baseline needs a file")?.to_string());
            }
            "--fail-on" => {
                i += 1;
                let v = argv.get(i).ok_or("--fail-on needs new, any, or none")?;
                opts.fail_on = Some(FailOn::parse(v)?);
            }
            flag if flag.starts_with("--fail-on=") => {
                opts.fail_on = Some(FailOn::parse(&flag["--fail-on=".len()..])?);
            }
            "--history-dir" => {
                i += 1;
                opts.history_dir = Some(
                    argv.get(i)
                        .ok_or("--history-dir needs a directory")?
                        .to_string(),
                );
            }
            "--no-history" => opts.no_history = true,
            "--no-ipc" => opts.config.implicit_ipc = false,
            "--no-expand" => {
                opts.config.callee_expansion = false;
                opts.config.caller_expansion = false;
            }
            "--missing" => opts.config.detect_missing = true,
            "--no-outlier" => opts.config.outlier_rule = false,
            "--window-reread" => opts.config.dataflow_reread = false,
            "--write-window" => {
                i += 1;
                opts.config.write_window = num(argv.get(i), "--write-window")?;
            }
            "--read-window" => {
                i += 1;
                opts.config.read_window = num(argv.get(i), "--read-window")?;
            }
            "--ipa-depth" => {
                i += 1;
                opts.config.ipa_depth = num(argv.get(i), "--ipa-depth")?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => opts.paths.push(path.to_string()),
        }
        i += 1;
    }
    if opts.no_cache && opts.cache_dir.is_some() {
        return Err("--cache-dir and --no-cache are mutually exclusive".into());
    }
    if opts.no_history && opts.history_dir.is_some() {
        return Err("--history-dir and --no-history are mutually exclusive".into());
    }
    Ok(opts)
}

fn parse_diff(argv: &[String]) -> Result<DiffOpts, String> {
    let mut run = parse_run_inner(argv)?;
    if run.apply {
        return Err("--apply is not supported by diff".into());
    }
    if run.baseline.is_some() {
        // Baseline mode: analyze the given paths, compare to the file.
        if run.paths.is_empty() {
            return Err("diff --baseline requires input paths to analyze".into());
        }
        return Ok(DiffOpts {
            old: None,
            new: None,
            run,
        });
    }
    // Two-operand mode: run ids or report files.
    if run.paths.len() != 2 {
        return Err(
            "diff requires exactly two operands (ledger run ids or --json report files), \
             or --baseline FILE with input paths"
                .into(),
        );
    }
    let new = run.paths.pop();
    let old = run.paths.pop();
    Ok(DiffOpts { old, new, run })
}

fn parse_baseline(argv: &[String]) -> Result<BaselineWriteOpts, String> {
    match argv.first().map(String::as_str) {
        Some("write") => {}
        Some(other) => {
            return Err(format!(
                "unknown baseline action `{other}` (expected write)"
            ))
        }
        None => return Err("baseline requires an action (write)".into()),
    }
    // Extract `--out FILE`; everything else goes to the shared parser.
    let mut rest: Vec<String> = Vec::new();
    let mut out = "ofence-baseline.json".to_string();
    let args = &argv[1..];
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--out" {
            i += 1;
            out = args.get(i).ok_or("--out needs a file")?.to_string();
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let run = parse_run(&rest)?;
    if run.apply {
        return Err("--apply is not supported by baseline write".into());
    }
    if run.baseline.is_some() {
        return Err("--baseline is not supported by baseline write (use --out)".into());
    }
    Ok(BaselineWriteOpts { out, run })
}

fn parse_watch(argv: &[String]) -> Result<WatchOpts, String> {
    // Split off the watch-specific flags, hand the rest to `parse_run`.
    let mut rest: Vec<String> = Vec::new();
    let mut interval_ms = 500u64;
    let mut max_iterations = None;
    let mut serve_metrics = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--interval-ms" => {
                i += 1;
                interval_ms = num64(argv.get(i), "--interval-ms")?;
            }
            "--max-iterations" => {
                i += 1;
                max_iterations = Some(num64(argv.get(i), "--max-iterations")?);
            }
            "--serve-metrics" => {
                i += 1;
                serve_metrics = Some(
                    argv.get(i)
                        .ok_or("--serve-metrics needs an address (host:port)")?
                        .to_string(),
                );
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    let run = parse_run(&rest)?;
    if run.apply {
        return Err("--apply is not supported in watch mode".into());
    }
    Ok(WatchOpts {
        run,
        interval_ms,
        max_iterations,
        serve_metrics,
    })
}

fn parse_serve(argv: &[String]) -> Result<ServeOpts, String> {
    // Split off the serve-specific flags, hand the rest to `parse_run`.
    let mut rest: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut metrics = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                i += 1;
                addr = argv
                    .get(i)
                    .ok_or("--addr needs an address (host:port)")?
                    .to_string();
            }
            "--metrics" => {
                i += 1;
                metrics = Some(
                    argv.get(i)
                        .ok_or("--metrics needs an address (host:port)")?
                        .to_string(),
                );
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    let run = parse_run(&rest)?;
    if run.apply {
        return Err("--apply is not supported by serve".into());
    }
    if run.json {
        return Err("--json is not supported by serve (responses are always JSON)".into());
    }
    Ok(ServeOpts { run, addr, metrics })
}

fn parse_call(argv: &[String]) -> Result<CallOpts, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut params = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--params" => {
                i += 1;
                params = Some(
                    argv.get(i)
                        .ok_or("--params needs a JSON value")?
                        .to_string(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown call option `{flag}`"));
            }
            other => positional.push(other.to_string()),
        }
        i += 1;
    }
    let [addr, method] = positional.as_slice() else {
        return Err("call requires exactly <host:port> and <method>".into());
    };
    Ok(CallOpts {
        addr: addr.clone(),
        method: method.clone(),
        params,
    })
}

fn parse_trace(argv: &[String]) -> Result<TraceOpts, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut json = false;
    for arg in argv {
        match arg.as_str() {
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown trace option `{flag}`"));
            }
            other => positional.push(other.to_string()),
        }
    }
    let [addr, request_id] = positional.as_slice() else {
        return Err("trace requires exactly <host:port> and <request-id>".into());
    };
    Ok(TraceOpts {
        addr: addr.clone(),
        request_id: request_id.clone(),
        json,
    })
}

fn parse_perf(argv: &[String]) -> Result<PerfOpts, String> {
    let mut opts = PerfOpts {
        ledger: None,
        history_dir: None,
        last: 10,
        gate: false,
        max_regress_pct: 10.0,
        requests: false,
        json: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--ledger" => {
                i += 1;
                opts.ledger = Some(argv.get(i).ok_or("--ledger needs a file")?.to_string());
            }
            "--history-dir" => {
                i += 1;
                opts.history_dir = Some(
                    argv.get(i)
                        .ok_or("--history-dir needs a directory")?
                        .to_string(),
                );
            }
            "--last" => {
                i += 1;
                opts.last = num(argv.get(i), "--last")? as usize;
            }
            "--gate" => opts.gate = true,
            "--max-regress-pct" => {
                i += 1;
                let v = argv.get(i).ok_or("--max-regress-pct needs a number")?;
                opts.max_regress_pct = v
                    .parse()
                    .map_err(|_| "--max-regress-pct needs a number".to_string())?;
            }
            "--requests" => opts.requests = true,
            "--json" => opts.json = true,
            other => return Err(format!("unknown perf option `{other}`")),
        }
        i += 1;
    }
    if opts.ledger.is_some() && opts.history_dir.is_some() {
        return Err("--ledger and --history-dir are mutually exclusive".into());
    }
    if opts.requests && opts.gate {
        return Err("--requests and --gate are mutually exclusive".into());
    }
    Ok(opts)
}

fn parse_explain(argv: &[String]) -> Result<ExplainOpts, String> {
    let Some(target) = argv.first() else {
        return Err("explain requires a <file:line> target".into());
    };
    let Some((file, line)) = target.rsplit_once(':') else {
        return Err(format!("`{target}` is not a <file:line> target"));
    };
    let line: u32 = line
        .parse()
        .map_err(|_| format!("`{target}` is not a <file:line> target"))?;
    let run = parse_run(&argv[1..])?;
    Ok(ExplainOpts {
        file: file.to_string(),
        line,
        run,
    })
}

fn parse_gen(argv: &[String]) -> Result<GenOpts, String> {
    let mut opts = GenOpts {
        out: String::new(),
        files: 20,
        seed: 1,
        with_bugs: false,
        chains: 0,
        chain_depth: 2,
        chain_bugs: 0,
        tier: None,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                opts.out = argv.get(i).ok_or("--out needs a directory")?.to_string();
            }
            "--tier" => {
                i += 1;
                opts.tier = Some(argv.get(i).ok_or("--tier needs a name")?.to_string());
            }
            "--files" => {
                i += 1;
                opts.files = num(argv.get(i), "--files")? as usize;
            }
            "--seed" => {
                i += 1;
                opts.seed = num64(argv.get(i), "--seed")?;
            }
            "--bugs" => opts.with_bugs = true,
            "--chains" => {
                i += 1;
                opts.chains = num(argv.get(i), "--chains")? as usize;
            }
            "--chain-depth" => {
                i += 1;
                opts.chain_depth = num(argv.get(i), "--chain-depth")? as usize;
            }
            "--chain-bugs" => {
                i += 1;
                opts.chain_bugs = num(argv.get(i), "--chain-bugs")? as usize;
            }
            other => return Err(format!("unknown gen option `{other}`")),
        }
        i += 1;
    }
    if opts.out.is_empty() {
        return Err("gen requires --out DIR".into());
    }
    Ok(opts)
}

fn num(v: Option<&String>, flag: &str) -> Result<u32, String> {
    v.ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

fn num64(v: Option<&String>, flag: &str) -> Result<u64, String> {
    v.ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn analyze_with_paths() {
        let cmd = parse(&argv("analyze a.c dir/")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.paths, vec!["a.c", "dir/"]);
                assert!(!o.json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn windows_override_config() {
        let cmd = parse(&argv("stats x.c --write-window 3 --read-window 20")).unwrap();
        match cmd {
            Command::Stats(o) => {
                assert_eq!(o.config.write_window, 3);
                assert_eq!(o.config.read_window, 20);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn toggles() {
        let cmd = parse(&argv("patch x.c --apply --no-ipc --no-expand --json")).unwrap();
        match cmd {
            Command::Patch(o) => {
                assert!(o.apply && o.json);
                assert!(!o.config.implicit_ipc);
                assert!(!o.config.callee_expansion);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_detector_flags() {
        let cmd = parse(&argv("analyze x.c --missing --no-outlier --window-reread")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert!(o.config.detect_missing);
                assert!(!o.config.outlier_rule);
                assert!(!o.config.dataflow_reread);
            }
            other => panic!("{other:?}"),
        }
        // Defaults stay conservative.
        let cmd = parse(&argv("analyze x.c")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert!(!o.config.detect_missing);
                assert!(o.config.outlier_rule);
                assert!(o.config.dataflow_reread);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gen_options() {
        let cmd = parse(&argv("gen --out /tmp/x --files 5 --seed 9 --bugs")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen(GenOpts {
                out: "/tmp/x".into(),
                files: 5,
                seed: 9,
                with_bugs: true,
                chains: 0,
                chain_depth: 2,
                chain_bugs: 0,
                tier: None,
            })
        );
        let cmd = parse(&argv("gen --out /tmp/x --tier 12k")).unwrap();
        match cmd {
            Command::Gen(o) => assert_eq!(o.tier.as_deref(), Some("12k")),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv(
            "gen --out /tmp/x --chains 4 --chain-depth 3 --chain-bugs 1",
        ))
        .unwrap();
        match cmd {
            Command::Gen(o) => {
                assert_eq!(o.chains, 4);
                assert_eq!(o.chain_depth, 3);
                assert_eq!(o.chain_bugs, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ipa_depth_flag() {
        match parse(&argv("analyze x.c --ipa-depth 2")).unwrap() {
            Command::Analyze(o) => assert_eq!(o.config.ipa_depth, 2),
            other => panic!("{other:?}"),
        }
        // Off by default — the paper's intra-procedural pipeline.
        match parse(&argv("analyze x.c")).unwrap() {
            Command::Analyze(o) => assert_eq!(o.config.ipa_depth, 0),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("analyze x.c --ipa-depth")).is_err());
        assert!(parse(&argv("analyze x.c --ipa-depth deep")).is_err());
    }

    #[test]
    fn trace_and_metrics_outputs() {
        let cmd = parse(&argv(
            "analyze x.c --trace-out trace.json --metrics-out metrics.txt",
        ))
        .unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.trace_out.as_deref(), Some("trace.json"));
                assert_eq!(o.metrics_out.as_deref(), Some("metrics.txt"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn events_and_slow_files_flags() {
        let cmd = parse(&argv(
            "analyze x.c --events-out events.ndjson --slow-files 12",
        ))
        .unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.events_out.as_deref(), Some("events.ndjson"));
                assert_eq!(o.slow_files, Some(12));
            }
            other => panic!("{other:?}"),
        }
        // `-` streams to stdout; defaults stay off.
        match parse(&argv("analyze x.c --events-out -")).unwrap() {
            Command::Analyze(o) => {
                assert_eq!(o.events_out.as_deref(), Some("-"));
                assert_eq!(o.slow_files, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("analyze x.c --events-out")).is_err());
        assert!(parse(&argv("analyze x.c --slow-files many")).is_err());
    }

    #[test]
    fn watch_serve_metrics() {
        match parse(&argv("watch src/ --serve-metrics 127.0.0.1:0")).unwrap() {
            Command::Watch(o) => {
                assert_eq!(o.serve_metrics.as_deref(), Some("127.0.0.1:0"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("watch src/")).unwrap() {
            Command::Watch(o) => assert_eq!(o.serve_metrics, None),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("watch src/ --serve-metrics")).is_err());
    }

    #[test]
    fn serve_options() {
        match parse(&argv(
            "serve src/ --addr 127.0.0.1:7433 --metrics 127.0.0.1:0",
        ))
        .unwrap()
        {
            Command::Serve(o) => {
                assert_eq!(o.run.paths, vec!["src/"]);
                assert_eq!(o.addr, "127.0.0.1:7433");
                assert_eq!(o.metrics.as_deref(), Some("127.0.0.1:0"));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: OS-picked port, no metrics endpoint; run options
        // (cache, windows) flow through to the session.
        match parse(&argv("serve src/ --no-cache --ipa-depth 2")).unwrap() {
            Command::Serve(o) => {
                assert_eq!(o.addr, "127.0.0.1:0");
                assert_eq!(o.metrics, None);
                assert!(o.run.no_cache);
                assert_eq!(o.run.config.ipa_depth, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve")).is_err()); // no paths
        assert!(parse(&argv("serve src/ --addr")).is_err());
        assert!(parse(&argv("serve src/ --apply")).is_err());
        assert!(parse(&argv("serve src/ --json")).is_err());
    }

    #[test]
    fn call_options() {
        match parse(&argv("call 127.0.0.1:7433 analyze")).unwrap() {
            Command::Call(o) => {
                assert_eq!(o.addr, "127.0.0.1:7433");
                assert_eq!(o.method, "analyze");
                assert_eq!(o.params, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&[
            "call".into(),
            "127.0.0.1:7433".into(),
            "explain".into(),
            "--params".into(),
            "{\"file\": \"m.c\", \"line\": 2}".into(),
        ])
        .unwrap();
        match cmd {
            Command::Call(o) => {
                assert_eq!(o.method, "explain");
                assert_eq!(
                    o.params.as_deref(),
                    Some("{\"file\": \"m.c\", \"line\": 2}")
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("call 127.0.0.1:7433")).is_err());
        assert!(parse(&argv("call 127.0.0.1:7433 ping extra")).is_err());
        assert!(parse(&argv("call 127.0.0.1:7433 ping --params")).is_err());
        assert!(parse(&argv("call 127.0.0.1:7433 ping --bogus")).is_err());
    }

    #[test]
    fn trace_options() {
        match parse(&argv("trace 127.0.0.1:7433 r000042")).unwrap() {
            Command::Trace(o) => {
                assert_eq!(o.addr, "127.0.0.1:7433");
                assert_eq!(o.request_id, "r000042");
                assert!(!o.json);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("trace 127.0.0.1:7433 ci-7 --json")).unwrap() {
            Command::Trace(o) => {
                assert_eq!(o.request_id, "ci-7");
                assert!(o.json);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("trace 127.0.0.1:7433")).is_err());
        assert!(parse(&argv("trace 127.0.0.1:7433 r1 extra")).is_err());
        assert!(parse(&argv("trace 127.0.0.1:7433 r1 --bogus")).is_err());
    }

    #[test]
    fn perf_options() {
        match parse(&argv("perf")).unwrap() {
            Command::Perf(o) => {
                assert_eq!(o.ledger, None);
                assert_eq!(o.history_dir, None);
                assert_eq!(o.last, 10);
                assert!(!o.gate && !o.json && !o.requests);
                assert_eq!(o.max_regress_pct, 10.0);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "perf --ledger p.jsonl --last 3 --gate --max-regress-pct 25 --json",
        ))
        .unwrap()
        {
            Command::Perf(o) => {
                assert_eq!(o.ledger.as_deref(), Some("p.jsonl"));
                assert_eq!(o.last, 3);
                assert!(o.gate && o.json);
                assert_eq!(o.max_regress_pct, 25.0);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("perf --history-dir .h")).unwrap() {
            Command::Perf(o) => assert_eq!(o.history_dir.as_deref(), Some(".h")),
            other => panic!("{other:?}"),
        }
        match parse(&argv("perf --requests --last 5")).unwrap() {
            Command::Perf(o) => {
                assert!(o.requests);
                assert_eq!(o.last, 5);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("perf --requests --gate")).is_err());
        assert!(parse(&argv("perf --ledger a --history-dir b")).is_err());
        assert!(parse(&argv("perf --max-regress-pct soon")).is_err());
        assert!(parse(&argv("perf stray-operand")).is_err());
    }

    #[test]
    fn explain_target() {
        let cmd = parse(&argv("explain writer.c:12 src/ --write-window 3")).unwrap();
        match cmd {
            Command::Explain(o) => {
                assert_eq!(o.file, "writer.c");
                assert_eq!(o.line, 12);
                assert_eq!(o.run.paths, vec!["src/"]);
                assert_eq!(o.run.config.write_window, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_flags() {
        let cmd = parse(&argv("analyze x.c --cache-dir /tmp/c")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.cache_dir.as_deref(), Some("/tmp/c"));
                assert!(!o.no_cache);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("stats x.c --no-cache")).unwrap();
        match cmd {
            Command::Stats(o) => assert!(o.no_cache && o.cache_dir.is_none()),
            other => panic!("{other:?}"),
        }
        let err = parse(&argv("analyze x.c --cache-dir d --no-cache")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn watch_options() {
        let cmd = parse(&argv(
            "watch src/ --interval-ms 50 --max-iterations 3 --no-cache --missing",
        ))
        .unwrap();
        match cmd {
            Command::Watch(o) => {
                assert_eq!(o.run.paths, vec!["src/"]);
                assert_eq!(o.interval_ms, 50);
                assert_eq!(o.max_iterations, Some(3));
                assert!(o.run.no_cache);
                assert!(o.run.config.detect_missing);
            }
            other => panic!("{other:?}"),
        }
        // Defaults.
        let cmd = parse(&argv("watch src/")).unwrap();
        match cmd {
            Command::Watch(o) => {
                assert_eq!(o.interval_ms, 500);
                assert_eq!(o.max_iterations, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze x.c --write-window")).is_err());
        assert!(parse(&argv("analyze x.c --trace-out")).is_err());
        assert!(parse(&argv("analyze x.c --cache-dir")).is_err());
        assert!(parse(&argv("gen --files 3")).is_err());
        assert!(parse(&argv("explain")).is_err());
        assert!(parse(&argv("explain not-a-target x.c")).is_err());
        assert!(parse(&argv("explain f.c:12")).is_err()); // no paths
        assert!(parse(&argv("watch")).is_err()); // no paths
        assert!(parse(&argv("watch d --interval-ms")).is_err());
        assert!(parse(&argv("watch d --apply")).is_err());
    }

    #[test]
    fn triage_flags() {
        let cmd = parse(&argv(
            "analyze x.c --sarif-out out.sarif --baseline base.json --fail-on new",
        ))
        .unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.sarif_out.as_deref(), Some("out.sarif"));
                assert_eq!(o.baseline.as_deref(), Some("base.json"));
                assert_eq!(o.fail_on, Some(FailOn::New));
            }
            other => panic!("{other:?}"),
        }
        // `--fail-on=new` form and the other policies.
        for (flag, want) in [
            ("--fail-on=new", FailOn::New),
            ("--fail-on=any", FailOn::Any),
            ("--fail-on=none", FailOn::None),
        ] {
            match parse(&argv(&format!("analyze x.c {flag}"))).unwrap() {
                Command::Analyze(o) => assert_eq!(o.fail_on, Some(want)),
                other => panic!("{other:?}"),
            }
        }
        assert!(parse(&argv("analyze x.c --fail-on sometimes")).is_err());
        assert!(parse(&argv("analyze x.c --fail-on")).is_err());
        assert!(parse(&argv("analyze x.c --sarif-out")).is_err());
    }

    #[test]
    fn history_flags() {
        match parse(&argv("analyze x.c --history-dir /tmp/h")).unwrap() {
            Command::Analyze(o) => {
                assert_eq!(o.history_dir.as_deref(), Some("/tmp/h"));
                assert!(!o.no_history);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("analyze x.c --no-history")).unwrap() {
            Command::Analyze(o) => assert!(o.no_history && o.history_dir.is_none()),
            other => panic!("{other:?}"),
        }
        let err = parse(&argv("analyze x.c --history-dir d --no-history")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn diff_two_operands() {
        match parse(&argv("diff old.json new.json --json")).unwrap() {
            Command::Diff(o) => {
                assert_eq!(o.old.as_deref(), Some("old.json"));
                assert_eq!(o.new.as_deref(), Some("new.json"));
                assert!(o.run.json);
                assert!(o.run.paths.is_empty());
            }
            other => panic!("{other:?}"),
        }
        // Run ids work the same way syntactically.
        match parse(&argv("diff run-0011 run-0022 --history-dir .h")).unwrap() {
            Command::Diff(o) => {
                assert_eq!(o.old.as_deref(), Some("run-0011"));
                assert_eq!(o.run.history_dir.as_deref(), Some(".h"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("diff only-one")).is_err());
        assert!(parse(&argv("diff a b c")).is_err());
        assert!(parse(&argv("diff")).is_err());
        assert!(parse(&argv("diff a b --apply")).is_err());
    }

    #[test]
    fn diff_baseline_mode() {
        match parse(&argv("diff --baseline base.json src/ --missing")).unwrap() {
            Command::Diff(o) => {
                assert_eq!(o.old, None);
                assert_eq!(o.new, None);
                assert_eq!(o.run.baseline.as_deref(), Some("base.json"));
                assert_eq!(o.run.paths, vec!["src/"]);
                assert!(o.run.config.detect_missing);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("diff --baseline base.json")).is_err()); // no paths
    }

    #[test]
    fn baseline_write_options() {
        match parse(&argv("baseline write src/ --out known.json --missing")).unwrap() {
            Command::BaselineWrite(o) => {
                assert_eq!(o.out, "known.json");
                assert_eq!(o.run.paths, vec!["src/"]);
                assert!(o.run.config.detect_missing);
            }
            other => panic!("{other:?}"),
        }
        // Default output file.
        match parse(&argv("baseline write src/")).unwrap() {
            Command::BaselineWrite(o) => assert_eq!(o.out, "ofence-baseline.json"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("baseline")).is_err());
        assert!(parse(&argv("baseline erase src/")).is_err());
        assert!(parse(&argv("baseline write")).is_err()); // no paths
        assert!(parse(&argv("baseline write src/ --out")).is_err());
        assert!(parse(&argv("baseline write src/ --baseline b.json")).is_err());
    }
}
