//! Argument parsing (hand-rolled; the tool has a small, stable surface).

use ofence::AnalysisConfig;

pub const USAGE: &str = "\
usage:
  ofence analyze  <paths...> [--json] [output options] [window options]
  ofence patch    <paths...> [--apply] [--json] [window options]
  ofence annotate <paths...> [--apply] [--json] [window options]
  ofence stats    <paths...> [--json] [window options]
  ofence explain  <file:line> <paths...> [--json] [window options]
  ofence watch    <paths...> [--interval-ms N] [--max-iterations N] [...]
  ofence gen      --out DIR [--files N] [--seed S] [--bugs]

output options:
  --trace-out FILE   write a Chrome-tracing JSON trace of the run
  --metrics-out FILE write Prometheus text-format metrics of the run

cache options (analysis subcommands and watch):
  --cache-dir DIR    persist the per-file analysis cache here
                     (default: .ofence-cache)
  --no-cache         do not read or write the on-disk cache

window options:
  --write-window N   statements explored around write barriers (default 5)
  --read-window N    statements explored around read barriers (default 50)
  --no-ipc           disable implicit wake-up barrier detection
  --no-expand        disable callee/caller expansion
  --missing          enable the missing-barrier detector (dataflow)
  --no-outlier       report all fence-less readers, not just outliers
  --window-reread    use the bounded-window re-read heuristic (no dataflow)

`explain` replays the pairing decision for the barrier at <file:line>:
the candidate set, shared-object overlap, distance-product weights, and
why the winner won (or why the barrier stayed unpaired).

`watch` polls the given paths (mtime-free content hashing, no inotify
dependency) and re-runs the incremental analysis when a file changes,
printing only the deviation delta (+ new, - fixed). `--interval-ms`
sets the poll period (default 500); `--max-iterations` exits after N
analysis runs (default: run until interrupted).";

/// A parsed invocation.
#[derive(Debug, PartialEq)]
pub enum Command {
    Analyze(RunOpts),
    Patch(RunOpts),
    Annotate(RunOpts),
    Stats(RunOpts),
    Explain(ExplainOpts),
    Watch(WatchOpts),
    Gen(GenOpts),
}

/// Options shared by the analysis subcommands.
#[derive(Debug, PartialEq)]
pub struct RunOpts {
    pub paths: Vec<String>,
    pub json: bool,
    pub apply: bool,
    /// Write a Chrome-tracing JSON trace of the run to this file.
    pub trace_out: Option<String>,
    /// Write Prometheus text-format metrics of the run to this file.
    pub metrics_out: Option<String>,
    /// Where to persist the per-file analysis cache (`--cache-dir`);
    /// `None` means the default `.ofence-cache` directory.
    pub cache_dir: Option<String>,
    /// `--no-cache`: skip reading and writing the on-disk cache.
    pub no_cache: bool,
    pub config: AnalysisConfig,
}

/// `ofence watch <paths...>` — poll for changes and re-analyze.
#[derive(Debug, PartialEq)]
pub struct WatchOpts {
    pub run: RunOpts,
    /// Poll period in milliseconds.
    pub interval_ms: u64,
    /// Exit after this many analysis runs (`None`: until interrupted).
    pub max_iterations: Option<u64>,
}

/// `ofence explain <file:line> <paths...>`.
#[derive(Debug, PartialEq)]
pub struct ExplainOpts {
    /// Target barrier location, as given (`file:line`).
    pub file: String,
    pub line: u32,
    pub run: RunOpts,
}

#[derive(Debug, PartialEq)]
pub struct GenOpts {
    pub out: String,
    pub files: usize,
    pub seed: u64,
    pub with_bugs: bool,
}

pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some(sub) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "analyze" => Ok(Command::Analyze(parse_run(rest)?)),
        "patch" => Ok(Command::Patch(parse_run(rest)?)),
        "annotate" => Ok(Command::Annotate(parse_run(rest)?)),
        "stats" => Ok(Command::Stats(parse_run(rest)?)),
        "explain" => Ok(Command::Explain(parse_explain(rest)?)),
        "watch" => Ok(Command::Watch(parse_watch(rest)?)),
        "gen" => Ok(Command::Gen(parse_gen(rest)?)),
        "--help" | "-h" | "help" => Err("".into()),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn parse_run(argv: &[String]) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        paths: Vec::new(),
        json: false,
        apply: false,
        trace_out: None,
        metrics_out: None,
        cache_dir: None,
        no_cache: false,
        config: AnalysisConfig::default(),
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => opts.json = true,
            "--apply" => opts.apply = true,
            "--cache-dir" => {
                i += 1;
                opts.cache_dir = Some(
                    argv.get(i)
                        .ok_or("--cache-dir needs a directory")?
                        .to_string(),
                );
            }
            "--no-cache" => opts.no_cache = true,
            "--trace-out" => {
                i += 1;
                opts.trace_out = Some(argv.get(i).ok_or("--trace-out needs a file")?.to_string());
            }
            "--metrics-out" => {
                i += 1;
                opts.metrics_out =
                    Some(argv.get(i).ok_or("--metrics-out needs a file")?.to_string());
            }
            "--no-ipc" => opts.config.implicit_ipc = false,
            "--no-expand" => {
                opts.config.callee_expansion = false;
                opts.config.caller_expansion = false;
            }
            "--missing" => opts.config.detect_missing = true,
            "--no-outlier" => opts.config.outlier_rule = false,
            "--window-reread" => opts.config.dataflow_reread = false,
            "--write-window" => {
                i += 1;
                opts.config.write_window = num(argv.get(i), "--write-window")?;
            }
            "--read-window" => {
                i += 1;
                opts.config.read_window = num(argv.get(i), "--read-window")?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown option `{flag}`"));
            }
            path => opts.paths.push(path.to_string()),
        }
        i += 1;
    }
    if opts.paths.is_empty() {
        return Err("no input paths given".into());
    }
    if opts.no_cache && opts.cache_dir.is_some() {
        return Err("--cache-dir and --no-cache are mutually exclusive".into());
    }
    Ok(opts)
}

fn parse_watch(argv: &[String]) -> Result<WatchOpts, String> {
    // Split off the watch-specific flags, hand the rest to `parse_run`.
    let mut rest: Vec<String> = Vec::new();
    let mut interval_ms = 500u64;
    let mut max_iterations = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--interval-ms" => {
                i += 1;
                interval_ms = num64(argv.get(i), "--interval-ms")?;
            }
            "--max-iterations" => {
                i += 1;
                max_iterations = Some(num64(argv.get(i), "--max-iterations")?);
            }
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    let run = parse_run(&rest)?;
    if run.apply {
        return Err("--apply is not supported in watch mode".into());
    }
    Ok(WatchOpts {
        run,
        interval_ms,
        max_iterations,
    })
}

fn parse_explain(argv: &[String]) -> Result<ExplainOpts, String> {
    let Some(target) = argv.first() else {
        return Err("explain requires a <file:line> target".into());
    };
    let Some((file, line)) = target.rsplit_once(':') else {
        return Err(format!("`{target}` is not a <file:line> target"));
    };
    let line: u32 = line
        .parse()
        .map_err(|_| format!("`{target}` is not a <file:line> target"))?;
    let run = parse_run(&argv[1..])?;
    Ok(ExplainOpts {
        file: file.to_string(),
        line,
        run,
    })
}

fn parse_gen(argv: &[String]) -> Result<GenOpts, String> {
    let mut opts = GenOpts {
        out: String::new(),
        files: 20,
        seed: 1,
        with_bugs: false,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--out" => {
                i += 1;
                opts.out = argv.get(i).ok_or("--out needs a directory")?.to_string();
            }
            "--files" => {
                i += 1;
                opts.files = num(argv.get(i), "--files")? as usize;
            }
            "--seed" => {
                i += 1;
                opts.seed = num64(argv.get(i), "--seed")?;
            }
            "--bugs" => opts.with_bugs = true,
            other => return Err(format!("unknown gen option `{other}`")),
        }
        i += 1;
    }
    if opts.out.is_empty() {
        return Err("gen requires --out DIR".into());
    }
    Ok(opts)
}

fn num(v: Option<&String>, flag: &str) -> Result<u32, String> {
    v.ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

fn num64(v: Option<&String>, flag: &str) -> Result<u64, String> {
    v.ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn analyze_with_paths() {
        let cmd = parse(&argv("analyze a.c dir/")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.paths, vec!["a.c", "dir/"]);
                assert!(!o.json);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn windows_override_config() {
        let cmd = parse(&argv("stats x.c --write-window 3 --read-window 20")).unwrap();
        match cmd {
            Command::Stats(o) => {
                assert_eq!(o.config.write_window, 3);
                assert_eq!(o.config.read_window, 20);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn toggles() {
        let cmd = parse(&argv("patch x.c --apply --no-ipc --no-expand --json")).unwrap();
        match cmd {
            Command::Patch(o) => {
                assert!(o.apply && o.json);
                assert!(!o.config.implicit_ipc);
                assert!(!o.config.callee_expansion);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_detector_flags() {
        let cmd = parse(&argv("analyze x.c --missing --no-outlier --window-reread")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert!(o.config.detect_missing);
                assert!(!o.config.outlier_rule);
                assert!(!o.config.dataflow_reread);
            }
            other => panic!("{other:?}"),
        }
        // Defaults stay conservative.
        let cmd = parse(&argv("analyze x.c")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert!(!o.config.detect_missing);
                assert!(o.config.outlier_rule);
                assert!(o.config.dataflow_reread);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gen_options() {
        let cmd = parse(&argv("gen --out /tmp/x --files 5 --seed 9 --bugs")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen(GenOpts {
                out: "/tmp/x".into(),
                files: 5,
                seed: 9,
                with_bugs: true
            })
        );
    }

    #[test]
    fn trace_and_metrics_outputs() {
        let cmd = parse(&argv(
            "analyze x.c --trace-out trace.json --metrics-out metrics.txt",
        ))
        .unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.trace_out.as_deref(), Some("trace.json"));
                assert_eq!(o.metrics_out.as_deref(), Some("metrics.txt"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_target() {
        let cmd = parse(&argv("explain writer.c:12 src/ --write-window 3")).unwrap();
        match cmd {
            Command::Explain(o) => {
                assert_eq!(o.file, "writer.c");
                assert_eq!(o.line, 12);
                assert_eq!(o.run.paths, vec!["src/"]);
                assert_eq!(o.run.config.write_window, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cache_flags() {
        let cmd = parse(&argv("analyze x.c --cache-dir /tmp/c")).unwrap();
        match cmd {
            Command::Analyze(o) => {
                assert_eq!(o.cache_dir.as_deref(), Some("/tmp/c"));
                assert!(!o.no_cache);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse(&argv("stats x.c --no-cache")).unwrap();
        match cmd {
            Command::Stats(o) => assert!(o.no_cache && o.cache_dir.is_none()),
            other => panic!("{other:?}"),
        }
        let err = parse(&argv("analyze x.c --cache-dir d --no-cache")).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn watch_options() {
        let cmd = parse(&argv(
            "watch src/ --interval-ms 50 --max-iterations 3 --no-cache --missing",
        ))
        .unwrap();
        match cmd {
            Command::Watch(o) => {
                assert_eq!(o.run.paths, vec!["src/"]);
                assert_eq!(o.interval_ms, 50);
                assert_eq!(o.max_iterations, Some(3));
                assert!(o.run.no_cache);
                assert!(o.run.config.detect_missing);
            }
            other => panic!("{other:?}"),
        }
        // Defaults.
        let cmd = parse(&argv("watch src/")).unwrap();
        match cmd {
            Command::Watch(o) => {
                assert_eq!(o.interval_ms, 500);
                assert_eq!(o.max_iterations, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("analyze")).is_err());
        assert!(parse(&argv("analyze x.c --write-window")).is_err());
        assert!(parse(&argv("analyze x.c --trace-out")).is_err());
        assert!(parse(&argv("analyze x.c --cache-dir")).is_err());
        assert!(parse(&argv("gen --files 3")).is_err());
        assert!(parse(&argv("explain")).is_err());
        assert!(parse(&argv("explain not-a-target x.c")).is_err());
        assert!(parse(&argv("explain f.c:12")).is_err()); // no paths
        assert!(parse(&argv("watch")).is_err()); // no paths
        assert!(parse(&argv("watch d --interval-ms")).is_err());
        assert!(parse(&argv("watch d --apply")).is_err());
    }
}
