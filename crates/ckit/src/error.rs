//! Front-end error types.
//!
//! All front-end entry points return `Result<_, Error>`; nothing in this
//! crate panics on malformed input (the corpus generator and the paper
//! fixtures are well-formed, but a real kernel tree is not, and a static
//! analyzer must keep going).

use crate::span::{LineCol, SourceMap, Span};
use std::fmt;

/// Phase of the front end that produced an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    Lex,
    Preprocess,
    Parse,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Preprocess => write!(f, "preprocess"),
            Phase::Parse => write!(f, "parse"),
        }
    }
}

/// A front-end diagnostic with a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    pub phase: Phase,
    pub message: String,
    pub span: Span,
}

impl Error {
    pub fn new(phase: Phase, message: impl Into<String>, span: Span) -> Self {
        Error {
            phase,
            message: message.into(),
            span,
        }
    }

    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        Error::new(Phase::Lex, message, span)
    }

    pub fn pp(message: impl Into<String>, span: Span) -> Self {
        Error::new(Phase::Preprocess, message, span)
    }

    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        Error::new(Phase::Parse, message, span)
    }

    /// Render with file/line/column against the file's source map.
    pub fn render(&self, map: &SourceMap) -> String {
        let LineCol { line, col } = map.lookup(self.span.lo);
        format!(
            "{}:{}:{}: {} error: {}",
            map.file, line, col, self.phase, self.message
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} error at {:?}: {}",
            self.phase, self.span, self.message
        )
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line() {
        let map = SourceMap::new("foo.c", "int x;\nint y@;\n");
        let err = Error::parse("unexpected `@`", Span::new(12, 13));
        assert_eq!(err.render(&map), "foo.c:2:6: parse error: unexpected `@`");
    }

    #[test]
    fn display_without_map() {
        let err = Error::lex("bad char", Span::new(3, 4));
        assert_eq!(err.to_string(), "lex error at 3..4: bad char");
    }
}
