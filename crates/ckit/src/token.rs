//! Token definitions for the kernel-C lexer.

use crate::intern::Name;
use crate::span::Span;
use std::fmt;

/// Kind of a single lexed token.
///
/// Keywords are folded into `Ident` at the lexer level and recognized by the
/// parser via [`TokenKind::Ident`] text comparison against [`is_keyword`];
/// kernel code is full of macro identifiers that shadow near-keywords, so a
/// permissive lexer keeps the front end robust.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    Ident(Name),
    /// Integer literal; we keep the raw text (suffixes like `UL` included)
    /// and the decoded value when it fits in u64.
    Int {
        raw: Name,
        value: u64,
    },
    Float(String),
    Str(String),
    Char(String),

    // Punctuation / operators, one variant per lexeme.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Colon,
    Question,
    Dot,
    Arrow,    // ->
    Ellipsis, // ...
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AmpAmp,
    PipePipe,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    /// `#` at start of a preprocessor directive (only emitted by the raw
    /// lexer; the preprocessor consumes these).
    Hash,
    Eof,
}

impl TokenKind {
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The interned name of an identifier token: clone this instead of
    /// `ident().to_string()` — it's a refcount bump, not an allocation.
    pub fn ident_name(&self) -> Option<&Name> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    pub fn is_eof(&self) -> bool {
        matches!(self, TokenKind::Eof)
    }

    /// Human-readable lexeme for diagnostics.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("`{s}`"),
            Int { raw, .. } => format!("`{raw}`"),
            Float(s) => format!("`{s}`"),
            Str(_) => "string literal".into(),
            Char(_) => "char literal".into(),
            Eof => "end of file".into(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// Fixed lexeme for punctuation tokens; empty for variable tokens.
    pub fn lexeme(&self) -> &'static str {
        use TokenKind::*;
        match self {
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Question => "?",
            Dot => ".",
            Arrow => "->",
            Ellipsis => "...",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            Pipe => "|",
            Caret => "^",
            Tilde => "~",
            Bang => "!",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            EqEq => "==",
            Ne => "!=",
            AmpAmp => "&&",
            PipePipe => "||",
            Shl => "<<",
            Shr => ">>",
            PlusPlus => "++",
            MinusMinus => "--",
            Assign => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            PercentEq => "%=",
            AmpEq => "&=",
            PipeEq => "|=",
            CaretEq => "^=",
            ShlEq => "<<=",
            ShrEq => ">>=",
            Hash => "#",
            _ => "",
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
    /// True when this token is the first on its source line (pre-expansion);
    /// the preprocessor uses it to delimit directives.
    pub at_line_start: bool,
}

impl fmt::Debug for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{:?}", self.kind, self.span)
    }
}

impl Token {
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token {
            kind,
            span,
            at_line_start: false,
        }
    }
}

/// C keywords we treat specially in the parser. Everything else that looks
/// like an identifier is an identifier (typedef names are resolved by the
/// parser's type-name heuristics).
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "auto"
            | "break"
            | "case"
            | "char"
            | "const"
            | "continue"
            | "default"
            | "do"
            | "double"
            | "else"
            | "enum"
            | "extern"
            | "float"
            | "for"
            | "goto"
            | "if"
            | "inline"
            | "int"
            | "long"
            | "register"
            | "restrict"
            | "return"
            | "short"
            | "signed"
            | "sizeof"
            | "static"
            | "struct"
            | "switch"
            | "typedef"
            | "union"
            | "unsigned"
            | "void"
            | "volatile"
            | "while"
            | "_Bool"
            | "bool"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_recognized() {
        assert!(is_keyword("struct"));
        assert!(is_keyword("volatile"));
        assert!(!is_keyword("smp_wmb"));
        assert!(!is_keyword("u64"));
    }

    #[test]
    fn describe_punct() {
        assert_eq!(TokenKind::Arrow.describe(), "`->`");
        assert_eq!(TokenKind::ShlEq.describe(), "`<<=`");
    }

    #[test]
    fn describe_ident() {
        assert_eq!(TokenKind::Ident("foo".into()).describe(), "`foo`");
    }
}
