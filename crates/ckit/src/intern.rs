//! Identifier interning.
//!
//! The `Box`+`String` AST was the front end's allocation hot spot: every
//! identifier token allocated a fresh `String` in the lexer, and each of
//! the parser/preprocessor/CFG layers that clone AST or token data paid
//! for a full copy again. A [`Name`] is a shared `Arc<str>`; a per-file
//! [`Interner`] (the file's symbol table) hands out one allocation per
//! *distinct* identifier, so token clones, macro expansion, AST clones
//! into `FunctionInfo`, and CFG lowering all become reference-count
//! bumps. An `Arc<str>` is used rather than a `u32` index so a `Name`
//! stays self-describing (no symbol-table handle to thread through
//! spans, serde, or patch synthesis) and files can drop their interner
//! after parsing without invalidating names.
//!
//! `Name` compares, hashes, and orders by content (with a pointer
//! fast path for equality), so it is a drop-in key anywhere `String`
//! was used before; serde writes it as a plain string, keeping every
//! on-disk format byte-compatible.

use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An interned identifier: cheap to clone, compared by content.
#[derive(Clone, Eq)]
pub struct Name(Arc<str>);

impl Name {
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Name) -> bool {
        // Names from one interner share storage; fall back to content so
        // names from different files still compare equal.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == &*other.0
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == &*other.0
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str`'s hash so `Borrow<str>` lookups work.
        self.0.hash(state)
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Name) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Name) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl Default for Name {
    fn default() -> Name {
        Name(Arc::from(""))
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name(Arc::from(s))
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name(Arc::from(s))
    }
}

impl From<&Name> for String {
    fn from(n: &Name) -> String {
        n.as_str().to_string()
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.as_str().to_string()
    }
}

impl serde::Serialize for Name {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.as_str().to_string())
    }
}

impl serde::Deserialize for Name {
    fn from_value(value: &serde::Value) -> Result<Name, serde::Error> {
        Ok(Name::from(String::from_value(value)?))
    }
}

/// A per-file symbol table: one shared allocation per distinct string.
#[derive(Default)]
pub struct Interner {
    set: HashSet<Arc<str>>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    pub fn intern(&mut self, s: &str) -> Name {
        if let Some(existing) = self.set.get(s) {
            return Name(existing.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        self.set.insert(arc.clone());
        Name(arc)
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_storage() {
        let mut i = Interner::new();
        let a = i.intern("smp_wmb");
        let b = i.intern("smp_wmb");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(i.len(), 1);
        let c = i.intern("smp_rmb");
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn names_compare_by_content_across_interners() {
        let a = Interner::new().intern("flag");
        let b = Interner::new().intern("flag");
        assert!(!Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn name_is_a_str_drop_in() {
        let n = Name::from("payload");
        assert_eq!(n, "payload");
        assert_eq!("payload", n);
        assert_eq!(n, String::from("payload"));
        assert_eq!(n.as_str(), "payload");
        assert!(n.starts_with("pay"));
        assert_eq!(format!("{n}"), "payload");
        assert_eq!(format!("{n:?}"), "\"payload\"");
        let mut set = std::collections::HashMap::new();
        set.insert(Name::from("k"), 1);
        assert_eq!(set.get("k"), Some(&1));
    }

    #[test]
    fn name_serde_is_a_plain_string() {
        use serde::{Deserialize, Serialize};
        let n = Name::from("ring");
        assert_eq!(n.to_value(), serde::Value::String("ring".into()));
        let back = Name::from_value(&n.to_value()).unwrap();
        assert_eq!(back, n);
    }
}
