//! Byte-offset spans and line/column mapping over a single source file.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[lo, hi)` into one source file.
///
/// Spans are produced by the lexer and threaded through every AST node so
/// that downstream passes (diagnostics, patch synthesis) can point back at
/// the original text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    pub lo: u32,
    pub hi: u32,
}

impl Span {
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "inverted span {lo}..{hi}");
        Span { lo, hi }
    }

    /// Smallest span covering both `self` and `other`.
    ///
    /// A dummy span is the identity: joining with it returns the other span
    /// unchanged, so synthesized nodes do not drag real spans to offset 0.
    pub fn to(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        Span::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    pub fn contains(self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Extract the spanned text out of the original source.
    pub fn slice(self, src: &str) -> &str {
        &src[self.lo as usize..self.hi as usize]
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// 1-based line/column position.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

/// Maps byte offsets of one file to line/column positions.
///
/// Built once per file; lookups are `O(log #lines)`.
#[derive(Clone, Debug)]
pub struct SourceMap {
    /// Name used in diagnostics (e.g. `net/core/sock_reuseport.c`).
    pub file: String,
    /// Byte offset of the start of each line; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    pub fn new(file: impl Into<String>, src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            file: file.into(),
            line_starts,
            len: src.len() as u32,
        }
    }

    pub fn len(&self) -> u32 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }

    /// Line/column of a byte offset. Offsets past the end clamp to the last
    /// position rather than panicking: diagnostics should never abort a run.
    pub fn lookup(&self, offset: u32) -> LineCol {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        LineCol {
            line: line as u32 + 1,
            col: offset - self.line_starts[line] + 1,
        }
    }

    /// Byte span of an entire (1-based) line, excluding the newline.
    pub fn line_span(&self, line: u32) -> Option<Span> {
        let idx = line.checked_sub(1)? as usize;
        let lo = *self.line_starts.get(idx)?;
        let hi = self
            .line_starts
            .get(idx + 1)
            .map(|&next| next.saturating_sub(1))
            .unwrap_or(self.len);
        Some(Span::new(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(4, 10);
        let b = Span::new(7, 20);
        assert_eq!(a.to(b), Span::new(4, 20));
        assert_eq!(b.to(a), Span::new(4, 20));
        assert_eq!(Span::DUMMY.to(a), a);
        assert_eq!(a.to(Span::DUMMY), a);
    }

    #[test]
    fn span_slice() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn lookup_first_line() {
        let sm = SourceMap::new("t.c", "abc\ndef\n");
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn lookup_second_line() {
        let sm = SourceMap::new("t.c", "abc\ndef\n");
        assert_eq!(sm.lookup(4), LineCol { line: 2, col: 1 });
        assert_eq!(sm.lookup(6), LineCol { line: 2, col: 3 });
    }

    #[test]
    fn lookup_at_newline_belongs_to_current_line() {
        let sm = SourceMap::new("t.c", "ab\ncd");
        assert_eq!(sm.lookup(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn lookup_clamps_past_end() {
        let sm = SourceMap::new("t.c", "ab");
        assert_eq!(sm.lookup(100), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_span_roundtrip() {
        let src = "one\ntwo\nthree";
        let sm = SourceMap::new("t.c", src);
        assert_eq!(sm.line_span(1).unwrap().slice(src), "one");
        assert_eq!(sm.line_span(2).unwrap().slice(src), "two");
        assert_eq!(sm.line_span(3).unwrap().slice(src), "three");
        assert_eq!(sm.line_span(4), None);
        assert_eq!(sm.line_span(0), None);
    }

    #[test]
    fn empty_file() {
        let sm = SourceMap::new("t.c", "");
        assert_eq!(sm.line_count(), 1);
        assert_eq!(sm.lookup(0), LineCol { line: 1, col: 1 });
    }
}
