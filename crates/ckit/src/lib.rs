//! # ckit — a kernel-C front end
//!
//! Lexer, preprocessor-lite, recursive-descent parser, AST, and
//! pretty-printer for the subset of C used by Linux kernel code around
//! memory barriers. This crate is the substrate that replaces Smatch's C
//! front end in the OFence reproduction (see the workspace `DESIGN.md`).
//!
//! ```
//! let out = ckit::parse_string("example.c", "int f(void) { return 1; }").unwrap();
//! assert!(out.errors.is_empty());
//! assert_eq!(out.unit.functions().count(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod intern;
pub mod lexer;
pub mod parser;
pub mod pp;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::TranslationUnit;
pub use error::{Error, Result};
pub use intern::{Interner, Name};
pub use parser::{ParseOutput, ParserConfig};
pub use pp::{PpConfig, PpOutput};
pub use span::{SourceMap, Span};

/// A fully parsed source file: AST, source map, recovered errors, and the
/// original text (kept for span-based patch synthesis, shared rather
/// than copied — `Arc<str>` clones are refcount bumps).
#[derive(Clone, Debug)]
pub struct ParsedFile {
    pub unit: TranslationUnit,
    pub map: SourceMap,
    pub source: std::sync::Arc<str>,
    pub errors: Vec<Error>,
    pub includes: Vec<String>,
}

/// Front-end options bundling preprocessor and parser configuration.
#[derive(Clone, Debug, Default)]
pub struct FrontendConfig {
    pub pp: PpConfig,
    pub parser: ParserConfig,
}

/// Parse a source string with default configuration.
///
/// Returns `Err` only on unrecoverable lexer/preprocessor failures;
/// item-level parse errors are recovered from and reported in
/// [`ParseOutput::errors`] / [`ParsedFile::errors`].
pub fn parse_string(file: &str, src: &str) -> Result<ParsedFile> {
    parse_with(file, src, &FrontendConfig::default())
}

/// Parse a source string with explicit configuration.
pub fn parse_with(file: &str, src: &str, config: &FrontendConfig) -> Result<ParsedFile> {
    let rec = obs::Recorder::new();
    parse_traced(file, src, config, &rec)
}

/// Parse a source string, recording a per-file `parse` span (with nested
/// `lex`/`pp`/`parse-tokens` sub-spans) and front-end counters into the
/// given recorder.
pub fn parse_traced(
    file: &str,
    src: &str,
    config: &FrontendConfig,
    rec: &obs::Recorder,
) -> Result<ParsedFile> {
    parse_traced_shared(file, &std::sync::Arc::from(src), config, rec)
}

/// Like [`parse_traced`], but shares an already-`Arc`ed source instead of
/// copying it — the engine holds file contents as `Arc<str>` and every
/// downstream layer (the parsed file, `FileAnalysis`, patch synthesis)
/// borrows the same buffer.
pub fn parse_traced_shared(
    file: &str,
    src: &std::sync::Arc<str>,
    config: &FrontendConfig,
    rec: &obs::Recorder,
) -> Result<ParsedFile> {
    let _span = rec.span_with("parse", &[("file", file)]);
    let tokens = {
        let _lex = rec.span_with("lex", &[("file", file)]);
        lexer::lex(src)?
    };
    rec.count("ckit_tokens", tokens.len() as u64);
    let ppo = {
        let _pp = rec.span_with("pp", &[("file", file)]);
        pp::preprocess(tokens, &config.pp)?
    };
    let out = {
        let _parse = rec.span_with("parse-tokens", &[("file", file)]);
        parser::parse_tokens(ppo.tokens, &config.parser)
    };
    rec.count("ckit_files_parsed", 1);
    rec.count("ckit_parse_errors", out.errors.len() as u64);
    rec.count("ckit_functions", out.unit.functions().count() as u64);
    Ok(ParsedFile {
        unit: out.unit,
        map: SourceMap::new(file, src),
        source: src.clone(),
        errors: out.errors,
        includes: ppo.includes,
    })
}
