//! Pretty-printer: AST → C source.
//!
//! Used by patch synthesis (to re-emit moved statements) and by the
//! property tests (print ∘ parse must be a projection: printing a parsed
//! unit and reparsing it yields an identical AST).

use crate::ast::*;
use std::fmt::Write;

/// Pretty-print a full translation unit.
pub fn print_unit(unit: &TranslationUnit) -> String {
    let mut p = Printer::default();
    for item in &unit.items {
        p.item(item);
        p.out.push('\n');
    }
    p.out
}

/// Pretty-print a single statement at the given indent level.
pub fn print_stmt(stmt: &Stmt, indent: usize) -> String {
    let mut p = Printer {
        indent,
        ..Printer::default()
    };
    p.stmt(stmt);
    p.out
}

/// Pretty-print a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr, 0);
    p.out
}

/// Render a declaration of `name` with type `ty` (C's inside-out syntax).
pub fn print_decl(ty: &Type, name: &str) -> String {
    decl_string(ty, name)
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push('\t');
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.indent += 1;
    }

    fn close(&mut self, text: &str) {
        self.indent -= 1;
        self.line(text);
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Struct(s) => {
                let kw = if s.is_union { "union" } else { "struct" };
                self.open(&format!("{kw} {} {{", s.name));
                for f in &s.fields {
                    let d = decl_string(&f.ty, &f.name);
                    self.line(&format!("{d};"));
                }
                self.close("};");
            }
            Item::Enum(e) => {
                self.open(&format!("enum {} {{", e.name));
                for (name, value) in &e.variants {
                    match value {
                        Some(v) => self.line(&format!("{name} = {},", print_expr(v))),
                        None => self.line(&format!("{name},")),
                    }
                }
                self.close("};");
            }
            Item::Typedef(t) => {
                let d = decl_string(&t.ty, &t.name);
                self.line(&format!("typedef {d};"));
            }
            Item::Function(f) => {
                let sig = signature_string(&f.sig);
                self.open(&format!("{sig} {{"));
                for s in &f.body {
                    self.stmt(s);
                }
                self.close("}");
            }
            Item::Prototype(sig) => {
                self.line(&format!("{};", signature_string(sig)));
            }
            Item::Global(g) => {
                let text = decl_stmt_string(g);
                self.line(&text);
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) => {
                let text = print_expr(e);
                self.line(&format!("{text};"));
            }
            StmtKind::Decl(d) => {
                let text = decl_stmt_string(d);
                self.line(&text);
            }
            StmtKind::Block(stmts) => {
                self.open("{");
                for s in stmts {
                    self.stmt(s);
                }
                self.close("}");
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.open(&format!("if ({}) {{", print_expr(cond)));
                self.stmt_inner(then_branch);
                match else_branch {
                    Some(e) => {
                        self.indent -= 1;
                        self.line("} else {");
                        self.indent += 1;
                        self.stmt_inner(e);
                        self.close("}");
                    }
                    None => self.close("}"),
                }
            }
            StmtKind::While { cond, body } => {
                self.open(&format!("while ({}) {{", print_expr(cond)));
                self.stmt_inner(body);
                self.close("}");
            }
            StmtKind::DoWhile { body, cond } => {
                self.open("do {");
                self.stmt_inner(body);
                self.close(&format!("}} while ({});", print_expr(cond)));
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_s = match init {
                    Some(s) => {
                        let text = print_stmt(s, 0);
                        text.trim_end().trim_end_matches(';').to_string() + ";"
                    }
                    None => ";".to_string(),
                };
                let cond_s = cond.as_ref().map(print_expr).unwrap_or_default();
                let step_s = step.as_ref().map(print_expr).unwrap_or_default();
                self.open(&format!("for ({init_s} {cond_s}; {step_s}) {{"));
                self.stmt_inner(body);
                self.close("}");
            }
            StmtKind::Switch { cond, body } => {
                self.open(&format!("switch ({}) {{", print_expr(cond)));
                self.stmt_inner(body);
                self.close("}");
            }
            StmtKind::Case { value, stmt } => {
                match value {
                    Some(v) => self.line(&format!("case {}:", print_expr(v))),
                    None => self.line("default:"),
                }
                self.indent += 1;
                self.stmt(stmt);
                self.indent -= 1;
            }
            StmtKind::Goto(label) => self.line(&format!("goto {label};")),
            StmtKind::Label { name, stmt } => {
                self.line(&format!("{name}:"));
                self.stmt(stmt);
            }
            StmtKind::Return(Some(e)) => self.line(&format!("return {};", print_expr(e))),
            StmtKind::Return(None) => self.line("return;"),
            StmtKind::Break => self.line("break;"),
            StmtKind::Continue => self.line("continue;"),
            StmtKind::Asm { volatile, body } => {
                let v = if *volatile { " volatile" } else { "" };
                self.line(&format!("asm{v}({body});"));
            }
            StmtKind::Empty => self.line(";"),
        }
    }

    /// Print a statement that is the body of a control construct: blocks
    /// are flattened into the surrounding braces the printer just opened.
    fn stmt_inner(&mut self, stmt: &Stmt) {
        if let StmtKind::Block(stmts) = &stmt.kind {
            for s in stmts {
                self.stmt(s);
            }
        } else {
            self.stmt(stmt);
        }
    }

    fn expr(&mut self, e: &Expr, parent_prec: u8) {
        let text = expr_string(e, parent_prec);
        self.out.push_str(&text);
    }
}

fn signature_string(sig: &FunctionSig) -> String {
    let mut s = String::new();
    if sig.is_static {
        s.push_str("static ");
    }
    if sig.is_inline {
        s.push_str("inline ");
    }
    let mut params = String::new();
    if sig.params.is_empty() && !sig.variadic {
        params.push_str("void");
    } else {
        for (i, p) in sig.params.iter().enumerate() {
            if i > 0 {
                params.push_str(", ");
            }
            params.push_str(&decl_string(&p.ty, &p.name));
        }
        if sig.variadic {
            if !sig.params.is_empty() {
                params.push_str(", ");
            }
            params.push_str("...");
        }
    }
    let decl = decl_string(&sig.ret, &format!("{}({params})", sig.name));
    write!(s, "{decl}").unwrap();
    s
}

fn decl_stmt_string(d: &DeclStmt) -> String {
    // Multi-declarator statements are printed one per line to keep the
    // printer simple; semantics are identical.
    let mut parts = Vec::new();
    for decl in &d.decls {
        let mut text = decl_string(&decl.ty, &decl.name);
        if let Some(init) = &decl.init {
            write!(text, " = {}", print_expr(init)).unwrap();
        }
        text.push(';');
        parts.push(text);
    }
    parts.join(" ")
}

/// C declaration syntax: type + declarator, inside-out.
fn decl_string(ty: &Type, name: &str) -> String {
    match ty {
        Type::Ptr(inner) => match inner.as_ref() {
            Type::Func {
                ret,
                params,
                variadic,
            } => {
                let mut ps = String::new();
                if params.is_empty() && !variadic {
                    ps.push_str("void");
                } else {
                    for (i, p) in params.iter().enumerate() {
                        if i > 0 {
                            ps.push_str(", ");
                        }
                        ps.push_str(&decl_string(p, ""));
                    }
                    if *variadic {
                        if !params.is_empty() {
                            ps.push_str(", ");
                        }
                        ps.push_str("...");
                    }
                }
                decl_string(ret, &format!("(*{name})({ps})"))
            }
            _ => decl_string(inner, &format!("*{name}")),
        },
        Type::Array(inner, len) => {
            let suffix = match len {
                Some(n) => format!("{name}[{n}]"),
                None => format!("{name}[]"),
            };
            decl_string(inner, &suffix)
        }
        Type::Func {
            ret,
            params,
            variadic,
        } => {
            let mut ps = String::new();
            if params.is_empty() && !variadic {
                ps.push_str("void");
            } else {
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        ps.push_str(", ");
                    }
                    ps.push_str(&decl_string(p, ""));
                }
                if *variadic {
                    if !params.is_empty() {
                        ps.push_str(", ");
                    }
                    ps.push_str("...");
                }
            }
            decl_string(ret, &format!("{name}({ps})"))
        }
        base => {
            if name.is_empty() {
                format!("{base}").trim_end().to_string()
            } else {
                // normalize: `struct s * name` → `struct s *name`
                format!("{base} {name}").replace("* ", "*")
            }
        }
    }
}

fn prec_of(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::BitOr => 3,
        BinOp::BitXor => 4,
        BinOp::BitAnd => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Gt => ">",
        BinOp::Le => "<=",
        BinOp::Ge => ">=",
    }
}

fn assign_str(op: AssignOp) -> &'static str {
    match op {
        AssignOp::Assign => "=",
        AssignOp::Add => "+=",
        AssignOp::Sub => "-=",
        AssignOp::Mul => "*=",
        AssignOp::Div => "/=",
        AssignOp::Rem => "%=",
        AssignOp::BitAnd => "&=",
        AssignOp::BitOr => "|=",
        AssignOp::BitXor => "^=",
        AssignOp::Shl => "<<=",
        AssignOp::Shr => ">>=",
    }
}

fn expr_string(e: &Expr, parent_prec: u8) -> String {
    match &e.kind {
        ExprKind::Ident(s) => s.to_string(),
        ExprKind::IntLit { raw, .. } => raw.to_string(),
        ExprKind::FloatLit(raw) => raw.clone(),
        ExprKind::StrLit(s) => s.clone(),
        ExprKind::CharLit(c) => c.clone(),
        ExprKind::Unary(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Plus => "+",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Deref => "*",
                UnOp::Addr => "&",
                UnOp::PreInc => "++",
                UnOp::PreDec => "--",
            };
            let text = format!("{sym}{}", expr_string(inner, 11));
            wrap(text, 11, parent_prec)
        }
        ExprKind::Post(op, inner) => {
            let sym = match op {
                PostOp::Inc => "++",
                PostOp::Dec => "--",
            };
            format!("{}{sym}", expr_string(inner, 12))
        }
        ExprKind::Binary(op, a, b) => {
            let p = prec_of(*op);
            let text = format!(
                "{} {} {}",
                expr_string(a, p),
                binop_str(*op),
                expr_string(b, p + 1)
            );
            wrap(text, p, parent_prec)
        }
        ExprKind::Assign(op, a, b) => {
            let text = format!(
                "{} {} {}",
                expr_string(a, 1),
                assign_str(*op),
                expr_string(b, 0)
            );
            wrap(text, 0, parent_prec)
        }
        ExprKind::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            let text = format!(
                "{} ? {} : {}",
                expr_string(cond, 1),
                expr_string(then_expr, 0),
                expr_string(else_expr, 0)
            );
            wrap(text, 0, parent_prec)
        }
        ExprKind::Call { callee, args } => {
            let mut s = expr_string(callee, 12);
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&expr_string(a, 0));
            }
            s.push(')');
            s
        }
        ExprKind::Member { base, field, arrow } => {
            format!(
                "{}{}{field}",
                expr_string(base, 12),
                if *arrow { "->" } else { "." }
            )
        }
        ExprKind::Index(base, index) => {
            format!("{}[{}]", expr_string(base, 12), expr_string(index, 0))
        }
        ExprKind::Cast(ty, inner) => {
            let text = format!("({}){}", decl_string(ty, ""), expr_string(inner, 11));
            wrap(text, 11, parent_prec)
        }
        ExprKind::SizeofType(ty) => format!("sizeof({})", decl_string(ty, "")),
        ExprKind::SizeofExpr(inner) => format!("sizeof({})", expr_string(inner, 0)),
        ExprKind::Comma(a, b) => {
            let text = format!("{}, {}", expr_string(a, 0), expr_string(b, 0));
            format!("({text})")
        }
        ExprKind::InitList(inits) => {
            let mut s = String::from("{ ");
            for (i, init) in inits.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                if let Some(d) = &init.designator {
                    write!(s, ".{d} = ").unwrap();
                }
                s.push_str(&expr_string(&init.value, 0));
            }
            s.push_str(" }");
            s
        }
        ExprKind::StmtExpr(stmts) => {
            let mut s = String::from("({ ");
            for st in stmts {
                let text = print_stmt(st, 0);
                s.push_str(text.trim());
                s.push(' ');
            }
            s.push_str("})");
            s
        }
    }
}

fn wrap(text: String, my_prec: u8, parent_prec: u8) -> String {
    if my_prec < parent_prec {
        format!("({text})")
    } else {
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_string;

    fn roundtrip(src: &str) -> String {
        let out = parse_string("t.c", src).expect("parse");
        assert!(out.errors.is_empty(), "errors: {:?}", out.errors);
        print_unit(&out.unit)
    }

    #[test]
    fn simple_function() {
        let printed = roundtrip("int f(int a) { return a + 1; }");
        assert!(printed.contains("int f(int a) {"), "{printed}");
        assert!(printed.contains("return a + 1;"), "{printed}");
    }

    #[test]
    fn precedence_parens_preserved() {
        let printed = roundtrip("int f(void) { return (1 + 2) * 3; }");
        assert!(printed.contains("(1 + 2) * 3"), "{printed}");
    }

    #[test]
    fn member_chain() {
        let printed = roundtrip("void f(struct s *a) { a->b.c = 1; }");
        assert!(printed.contains("a->b.c = 1;"), "{printed}");
    }

    #[test]
    fn pointer_decl() {
        let printed = roundtrip("struct s *g;");
        assert!(printed.contains("struct s *g;"), "{printed}");
    }

    #[test]
    fn print_parse_is_projection() {
        let src = r#"
struct req { int len; int flag; };
static int f(struct req *r, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (r->flag & 0x4)
            continue;
        r->len += i;
    }
    do { n--; } while (n > 0);
    switch (n) {
    case 1:
        return 1;
    default:
        break;
    }
    return r->len ? r->len : -1;
}
"#;
        let once = roundtrip(src);
        let out2 = parse_string("t.c", &once).expect("reparse");
        assert!(out2.errors.is_empty(), "{:?}", out2.errors);
        let twice = print_unit(&out2.unit);
        assert_eq!(once, twice);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::parse_string;

    fn fixpoint(src: &str) -> String {
        let out = parse_string("t.c", src).expect("parse");
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let once = print_unit(&out.unit);
        let again = parse_string("t.c", &once).expect("reparse");
        assert!(again.errors.is_empty(), "{once}\n{:?}", again.errors);
        assert_eq!(once, print_unit(&again.unit), "not a fixpoint:\n{once}");
        once
    }

    #[test]
    fn asm_statement_roundtrips() {
        let printed = fixpoint(r#"void f(void) { asm volatile("mfence" ::: "memory"); }"#);
        assert!(printed.contains("asm volatile("), "{printed}");
    }

    #[test]
    fn goto_and_labels_roundtrip() {
        let printed = fixpoint("void f(int a) { if (a) goto out; a = 1; out: return; }");
        assert!(printed.contains("goto out;"));
        assert!(printed.contains("out:"));
    }

    #[test]
    fn switch_roundtrips() {
        let printed =
            fixpoint("void f(int a) { switch (a) { case 1: a = 2; break; default: a = 0; } }");
        assert!(printed.contains("case 1:"));
        assert!(printed.contains("default:"));
    }

    #[test]
    fn do_while_roundtrips() {
        let printed = fixpoint("void f(int n) { do { n--; } while (n > 0); }");
        assert!(printed.contains("} while (n > 0);"), "{printed}");
    }

    #[test]
    fn unary_and_cast_precedence() {
        let printed = fixpoint("int f(int a) { return -(a + 1) * (int)a; }");
        assert!(printed.contains("-(a + 1) * (int)a"), "{printed}");
    }

    #[test]
    fn ternary_nested() {
        fixpoint("int f(int a, int b) { return a ? b : a ? 1 : 2; }");
    }

    #[test]
    fn designated_initializer_roundtrips() {
        let printed = fixpoint("struct ops o = { .open = 1, .close = 2 };");
        assert!(printed.contains(".open = 1"), "{printed}");
    }

    #[test]
    fn function_pointer_signature() {
        let printed = fixpoint("int (*handler)(struct ev *e);");
        assert!(printed.contains("(*handler)"), "{printed}");
    }

    #[test]
    fn enum_with_values_roundtrips() {
        let printed = fixpoint("enum e { A = 1, B, C = 7 };");
        assert!(printed.contains("A = 1,"));
        assert!(printed.contains("B,"));
    }

    #[test]
    fn print_stmt_indent() {
        let out = parse_string("t.c", "void f(void) { g(); }").unwrap();
        let f = out.unit.functions().next().unwrap();
        let text = print_stmt(&f.body[0], 2);
        assert_eq!(text, "\t\tg();\n");
    }

    #[test]
    fn comma_operator_keeps_parens() {
        fixpoint("void f(int a, int b) { a = 1, b = 2; }");
    }

    #[test]
    fn array_of_pointers_decl() {
        let printed = fixpoint("struct sock *socks[16];");
        assert!(printed.contains("*socks[16]"), "{printed}");
    }
}
