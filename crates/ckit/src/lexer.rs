//! Hand-written lexer for kernel C.
//!
//! Produces raw tokens including `#` (preprocessor directives are handled by
//! [`crate::pp`] on the token stream). Comments and whitespace are skipped;
//! line continuations (`\` + newline) are honoured inside directives by the
//! preprocessor via the `at_line_start` flag on each token.

use crate::error::{Error, Result};
use crate::intern::Interner;
use crate::span::Span;
use crate::token::{Token, TokenKind};

pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// True until the first token of the current line is produced.
    line_start: bool,
    /// Per-file symbol table: identifiers (and integer-literal spellings)
    /// are interned so every repeat is a refcount bump, not a `String`.
    interner: Interner,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line_start: true,
            interner: Interner::new(),
        }
    }

    /// Lex the whole input. The final token is always `Eof`.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::with_capacity(self.src.len() / 4);
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind.is_eof();
            out.push(tok);
            if eof {
                break;
            }
        }
        Ok(out)
    }

    fn peek(&self) -> u8 {
        *self.bytes.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.bytes.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.bytes.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                b'\n' => {
                    self.line_start = true;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' | 0x0b | 0x0c => {
                    self.pos += 1;
                }
                b'\\' if self.peek2() == b'\n' => {
                    // Line continuation: the next physical line is a logical
                    // continuation, so it does NOT start a new line.
                    self.pos += 2;
                }
                b'\\' if self.peek2() == b'\r' && self.peek3() == b'\n' => {
                    self.pos += 3;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.bytes.len() {
                            return Err(Error::lex(
                                "unterminated block comment",
                                Span::new(start as u32, self.pos as u32),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        if self.peek() == b'\n' {
                            self.line_start = true;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let at_line_start = self.line_start;
        self.line_start = false;
        let start = self.pos;
        let kind = self.next_kind(start)?;
        let mut tok = Token::new(kind, Span::new(start as u32, self.pos as u32));
        tok.at_line_start = at_line_start;
        Ok(tok)
    }

    fn next_kind(&mut self, start: usize) -> Result<TokenKind> {
        use TokenKind::*;
        let c = self.peek();
        if c == 0 {
            return Ok(Eof);
        }
        if c.is_ascii_alphabetic() || c == b'_' || c == b'$' {
            return Ok(self.ident(start));
        }
        if c.is_ascii_digit() {
            return self.number(start);
        }
        if c == b'.' && self.peek2().is_ascii_digit() {
            return self.number(start);
        }
        if c == b'"' {
            return self.string(start);
        }
        if c == b'\'' {
            return self.char_lit(start);
        }
        self.bump();
        let two = |l: &mut Self, next: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == next {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'?' => Question,
            b'~' => Tilde,
            b'#' => Hash,
            b':' => Colon,
            b'.' => {
                if self.peek() == b'.' && self.peek2() == b'.' {
                    self.pos += 2;
                    Ellipsis
                } else {
                    Dot
                }
            }
            b'+' => {
                if self.peek() == b'+' {
                    self.bump();
                    PlusPlus
                } else {
                    two(self, b'=', PlusEq, Plus)
                }
            }
            b'-' => {
                if self.peek() == b'-' {
                    self.bump();
                    MinusMinus
                } else if self.peek() == b'>' {
                    self.bump();
                    Arrow
                } else {
                    two(self, b'=', MinusEq, Minus)
                }
            }
            b'*' => two(self, b'=', StarEq, Star),
            b'/' => two(self, b'=', SlashEq, Slash),
            b'%' => two(self, b'=', PercentEq, Percent),
            b'^' => two(self, b'=', CaretEq, Caret),
            b'!' => two(self, b'=', Ne, Bang),
            b'=' => two(self, b'=', EqEq, Assign),
            b'&' => {
                if self.peek() == b'&' {
                    self.bump();
                    AmpAmp
                } else {
                    two(self, b'=', AmpEq, Amp)
                }
            }
            b'|' => {
                if self.peek() == b'|' {
                    self.bump();
                    PipePipe
                } else {
                    two(self, b'=', PipeEq, Pipe)
                }
            }
            b'<' => {
                if self.peek() == b'<' {
                    self.bump();
                    two(self, b'=', ShlEq, Shl)
                } else {
                    two(self, b'=', Le, Lt)
                }
            }
            b'>' => {
                if self.peek() == b'>' {
                    self.bump();
                    two(self, b'=', ShrEq, Shr)
                } else {
                    two(self, b'=', Ge, Gt)
                }
            }
            other => {
                return Err(Error::lex(
                    format!("unexpected character `{}`", other as char),
                    Span::new(start as u32, self.pos as u32),
                ))
            }
        })
    }

    fn ident(&mut self, start: usize) -> TokenKind {
        while {
            let c = self.peek();
            c.is_ascii_alphanumeric() || c == b'_' || c == b'$'
        } {
            self.pos += 1;
        }
        TokenKind::Ident(self.interner.intern(&self.src[start..self.pos]))
    }

    fn number(&mut self, start: usize) -> Result<TokenKind> {
        let mut is_float = false;
        if self.peek() == b'0' && (self.peek2() | 0x20) == b'x' {
            self.pos += 2;
            while self.peek().is_ascii_hexdigit() {
                self.pos += 1;
            }
        } else {
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
            if self.peek() == b'.' && self.peek2() != b'.' {
                is_float = true;
                self.pos += 1;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
            if (self.peek() | 0x20) == b'e'
                && (self.peek2().is_ascii_digit()
                    || ((self.peek2() == b'+' || self.peek2() == b'-')
                        && self.peek3().is_ascii_digit()))
            {
                is_float = true;
                self.pos += 2;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            }
        }
        // Integer/float suffixes: u, l, ll, f combinations (case-insensitive).
        while matches!(self.peek() | 0x20, b'u' | b'l' | b'f') {
            if (self.peek() | 0x20) == b'f' {
                is_float = true;
            }
            self.pos += 1;
        }
        let raw = &self.src[start..self.pos];
        if is_float {
            return Ok(TokenKind::Float(raw.to_string()));
        }
        let digits = raw.trim_end_matches(['u', 'U', 'l', 'L']);
        let value = if let Some(hex) = digits.strip_prefix("0x").or(digits.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).unwrap_or(u64::MAX)
        } else if digits.len() > 1 && digits.starts_with('0') {
            u64::from_str_radix(&digits[1..], 8).unwrap_or(u64::MAX)
        } else {
            digits.parse().unwrap_or(u64::MAX)
        };
        Ok(TokenKind::Int {
            raw: self.interner.intern(raw),
            value,
        })
    }

    fn string(&mut self, start: usize) -> Result<TokenKind> {
        self.bump(); // opening quote
        while self.peek() != b'"' {
            match self.peek() {
                0 | b'\n' => {
                    return Err(Error::lex(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    ))
                }
                b'\\' => {
                    self.pos += 2;
                }
                _ => self.pos += 1,
            }
        }
        self.bump(); // closing quote
        Ok(TokenKind::Str(self.src[start..self.pos].to_string()))
    }

    fn char_lit(&mut self, start: usize) -> Result<TokenKind> {
        self.bump(); // opening quote
        while self.peek() != b'\'' {
            match self.peek() {
                0 | b'\n' => {
                    return Err(Error::lex(
                        "unterminated char literal",
                        Span::new(start as u32, self.pos as u32),
                    ))
                }
                b'\\' => self.pos += 2,
                _ => self.pos += 1,
            }
        }
        self.bump();
        Ok(TokenKind::Char(self.src[start..self.pos].to_string()))
    }
}

/// Convenience: lex a full source string.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .filter(|k| !k.is_eof())
            .collect()
    }

    #[test]
    fn punctuation_maximal_munch() {
        assert_eq!(
            kinds("a->b"),
            vec![Ident("a".into()), Arrow, Ident("b".into())]
        );
        assert_eq!(kinds("<<="), vec![ShlEq]);
        assert_eq!(kinds("< <="), vec![Lt, Le]);
        assert_eq!(
            kinds("a---b"),
            vec![Ident("a".into()), MinusMinus, Minus, Ident("b".into())]
        );
    }

    #[test]
    fn integers() {
        assert_eq!(
            kinds("0x1fUL 42 010"),
            vec![
                Int {
                    raw: "0x1fUL".into(),
                    value: 31
                },
                Int {
                    raw: "42".into(),
                    value: 42
                },
                Int {
                    raw: "010".into(),
                    value: 8
                },
            ]
        );
    }

    #[test]
    fn floats() {
        assert_eq!(kinds("1.5"), vec![Float("1.5".into())]);
        assert_eq!(kinds("2e10"), vec![Float("2e10".into())]);
        assert_eq!(kinds("3.0f"), vec![Float("3.0f".into())]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a /* hi */ b // tail\nc"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into())]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn strings_and_chars() {
        assert_eq!(
            kinds(r#""he\"y" 'x' '\n'"#),
            vec![
                Str(r#""he\"y""#.into()),
                Char("'x'".into()),
                Char(r"'\n'".into()),
            ]
        );
    }

    #[test]
    fn line_start_flags() {
        let toks = lex("#define A 1\nint x;").unwrap();
        assert_eq!(toks[0].kind, Hash);
        assert!(toks[0].at_line_start);
        assert!(!toks[1].at_line_start); // define
        assert!(toks[4].at_line_start); // int
    }

    #[test]
    fn line_continuation_not_line_start() {
        let toks = lex("#define A \\\n 1\nint").unwrap();
        // `1` continues the directive line.
        let one = toks.iter().find(|t| matches!(t.kind, Int { .. })).unwrap();
        assert!(!one.at_line_start);
        let int_kw = toks.iter().find(|t| t.kind.ident() == Some("int")).unwrap();
        assert!(int_kw.at_line_start);
    }

    #[test]
    fn ellipsis_vs_dots() {
        assert_eq!(
            kinds("f(...)"),
            vec![Ident("f".into()), LParen, Ellipsis, RParen]
        );
        assert_eq!(
            kinds("a.b"),
            vec![Ident("a".into()), Dot, Ident("b".into())]
        );
    }

    #[test]
    fn spans_cover_source() {
        let src = "ab + cd";
        let toks = lex(src).unwrap();
        assert_eq!(toks[0].span.slice(src), "ab");
        assert_eq!(toks[1].span.slice(src), "+");
        assert_eq!(toks[2].span.slice(src), "cd");
    }

    #[test]
    fn bad_char_errors() {
        assert!(lex("int @x;").is_err());
    }
}
