//! Abstract syntax tree for the kernel-C subset.
//!
//! The AST is `Box`-based with interned [`Name`] identifiers: names are
//! shared `Arc<str>`s from the file's lexer symbol table, so cloning a
//! subtree (into `FunctionInfo`, CFG lowering, summaries) bumps
//! refcounts instead of copying strings. Every node carries a [`Span`]
//! back into the original source — patch synthesis depends on it.

use crate::intern::Name;
use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One parsed source file.
#[derive(Clone, Debug, PartialEq)]
pub struct TranslationUnit {
    pub items: Vec<Item>,
}

/// Top-level item.
#[derive(Clone, Debug, PartialEq)]
pub enum Item {
    Struct(StructDef),
    Enum(EnumDef),
    Typedef(Typedef),
    Function(FunctionDef),
    /// Function prototype (no body).
    Prototype(FunctionSig),
    /// Global variable declaration(s).
    Global(DeclStmt),
}

impl Item {
    pub fn span(&self) -> Span {
        match self {
            Item::Struct(s) => s.span,
            Item::Enum(e) => e.span,
            Item::Typedef(t) => t.span,
            Item::Function(f) => f.span,
            Item::Prototype(p) => p.span,
            Item::Global(g) => g.span,
        }
    }
}

/// `struct`/`union` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    pub name: Name,
    pub is_union: bool,
    pub fields: Vec<FieldDecl>,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct FieldDecl {
    pub name: Name,
    pub ty: Type,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct EnumDef {
    pub name: Name,
    pub variants: Vec<(Name, Option<Expr>)>,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq)]
pub struct Typedef {
    pub name: Name,
    pub ty: Type,
    pub span: Span,
}

/// Function signature shared by definitions and prototypes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FunctionSig {
    pub name: Name,
    pub ret: Type,
    pub params: Vec<Param>,
    pub variadic: bool,
    pub is_static: bool,
    pub is_inline: bool,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Param {
    pub name: Name,
    pub ty: Type,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FunctionDef {
    pub sig: FunctionSig,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// Types. Qualifiers (`const`, `volatile`) and kernel annotations
/// (`__rcu`, `__percpu`, …) are dropped during parsing: the analysis is
/// qualifier-insensitive, exactly like the paper's `(struct, field)` tuples.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    Void,
    Bool,
    /// Any integer flavour; `signed` + rank captured loosely since the
    /// analysis never needs exact widths.
    Int {
        unsigned: bool,
        rank: IntRank,
    },
    Float,
    Double,
    /// A typedef name (`u64`, `atomic_t`, `seqcount_t`, …).
    Named(Name),
    /// `struct foo` / `union foo` reference.
    Struct {
        name: Name,
        is_union: bool,
    },
    Enum(Name),
    Ptr(Box<Type>),
    Array(Box<Type>, Option<u64>),
    /// Function type (for function pointers).
    Func {
        ret: Box<Type>,
        params: Vec<Type>,
        variadic: bool,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntRank {
    Char,
    Short,
    Int,
    Long,
    LongLong,
}

impl Type {
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    pub fn strukt(name: &str) -> Type {
        Type::Struct {
            name: name.into(),
            is_union: false,
        }
    }

    pub fn int() -> Type {
        Type::Int {
            unsigned: false,
            rank: IntRank::Int,
        }
    }

    /// Strip pointers and arrays down to the pointee/element type.
    pub fn base(&self) -> &Type {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => t.base(),
            t => t,
        }
    }

    /// Struct name if this (or its pointee) is a struct/union type.
    pub fn struct_name(&self) -> Option<&str> {
        match self.base() {
            Type::Struct { name, .. } => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int { unsigned, rank } => {
                if *unsigned {
                    write!(f, "unsigned ")?;
                }
                match rank {
                    IntRank::Char => write!(f, "char"),
                    IntRank::Short => write!(f, "short"),
                    IntRank::Int => write!(f, "int"),
                    IntRank::Long => write!(f, "long"),
                    IntRank::LongLong => write!(f, "long long"),
                }
            }
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Named(n) => write!(f, "{n}"),
            Type::Struct { name, is_union } => {
                write!(f, "{} {name}", if *is_union { "union" } else { "struct" })
            }
            Type::Enum(n) => write!(f, "enum {n}"),
            Type::Ptr(t) => write!(f, "{t} *"),
            Type::Array(t, Some(n)) => write!(f, "{t}[{n}]"),
            Type::Array(t, None) => write!(f, "{t}[]"),
            Type::Func {
                ret,
                params,
                variadic,
            } => {
                write!(f, "{ret} (*)(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                if *variadic {
                    if !params.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A declaration statement: `int a = 1, *b;` is one `DeclStmt` with two
/// declarators.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeclStmt {
    pub decls: Vec<Declarator>,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Declarator {
    pub name: Name,
    pub ty: Type,
    pub init: Option<Expr>,
    pub span: Span,
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    Expr(Expr),
    Decl(DeclStmt),
    Block(Vec<Stmt>),
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    While {
        cond: Expr,
        body: Box<Stmt>,
    },
    DoWhile {
        body: Box<Stmt>,
        cond: Expr,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Box<Stmt>,
    },
    Switch {
        cond: Expr,
        body: Box<Stmt>,
    },
    /// `case expr:` / `default:` label; `value == None` is `default`.
    Case {
        value: Option<Expr>,
        stmt: Box<Stmt>,
    },
    Goto(Name),
    Label {
        name: Name,
        stmt: Box<Stmt>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    /// Inline assembly, kept as raw text (`asm volatile("..." ::: "memory")`).
    /// The analysis treats it as an opaque statement with no tracked
    /// memory accesses; a `"memory"` clobber is a *compiler* barrier only.
    Asm {
        volatile: bool,
        body: String,
    },
    Empty,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    Ident(Name),
    IntLit {
        raw: Name,
        value: u64,
    },
    FloatLit(String),
    StrLit(String),
    CharLit(String),
    Unary(UnOp, Box<Expr>),
    /// `expr++` / `expr--`.
    Post(PostOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Assign(AssignOp, Box<Expr>, Box<Expr>),
    Ternary {
        cond: Box<Expr>,
        then_expr: Box<Expr>,
        else_expr: Box<Expr>,
    },
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`).
    Member {
        base: Box<Expr>,
        field: Name,
        arrow: bool,
    },
    Index(Box<Expr>, Box<Expr>),
    Cast(Type, Box<Expr>),
    SizeofType(Type),
    SizeofExpr(Box<Expr>),
    Comma(Box<Expr>, Box<Expr>),
    /// Brace initializer `{ .a = 1, 2 }`.
    InitList(Vec<Initializer>),
    /// GNU statement expression `({ ...; v; })`, ubiquitous in kernel macros.
    StmtExpr(Vec<Stmt>),
}

#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Initializer {
    /// `.field =` designator, if present.
    pub designator: Option<Name>,
    pub value: Expr,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    Neg,    // -
    Plus,   // +
    Not,    // !
    BitNot, // ~
    Deref,  // *
    Addr,   // &
    PreInc,
    PreDec,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PostOp {
    Inc,
    Dec,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And, // &&
    Or,  // ||
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    Assign,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl Expr {
    /// The identifier if this expression is a bare name.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Callee name if this is a direct call `f(...)`.
    pub fn call_name(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Call { callee, .. } => callee.as_ident(),
            _ => None,
        }
    }

    /// Walk this expression and all sub-expressions, outermost first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Ident(_)
            | ExprKind::IntLit { .. }
            | ExprKind::FloatLit(_)
            | ExprKind::StrLit(_)
            | ExprKind::CharLit(_)
            | ExprKind::SizeofType(_) => {}
            ExprKind::Unary(_, e)
            | ExprKind::Post(_, e)
            | ExprKind::Cast(_, e)
            | ExprKind::SizeofExpr(e) => e.walk(f),
            ExprKind::Binary(_, a, b)
            | ExprKind::Assign(_, a, b)
            | ExprKind::Index(a, b)
            | ExprKind::Comma(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            ExprKind::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                cond.walk(f);
                then_expr.walk(f);
                else_expr.walk(f);
            }
            ExprKind::Call { callee, args } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Member { base, .. } => base.walk(f),
            ExprKind::InitList(inits) => {
                for i in inits {
                    i.value.walk(f);
                }
            }
            ExprKind::StmtExpr(stmts) => {
                for s in stmts {
                    s.walk_exprs(f);
                }
            }
        }
    }
}

impl Stmt {
    /// Visit every expression contained in this statement (not descending
    /// into nested statements' expressions? — it does descend: blocks, ifs,
    /// loops are all walked recursively).
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match &self.kind {
            StmtKind::Expr(e) => e.walk(f),
            StmtKind::Decl(d) => {
                for decl in &d.decls {
                    if let Some(init) = &decl.init {
                        init.walk(f);
                    }
                }
            }
            StmtKind::Block(stmts) => {
                for s in stmts {
                    s.walk_exprs(f);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.walk(f);
                then_branch.walk_exprs(f);
                if let Some(e) = else_branch {
                    e.walk_exprs(f);
                }
            }
            StmtKind::While { cond, body } => {
                cond.walk(f);
                body.walk_exprs(f);
            }
            StmtKind::DoWhile { body, cond } => {
                body.walk_exprs(f);
                cond.walk(f);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    i.walk_exprs(f);
                }
                if let Some(c) = cond {
                    c.walk(f);
                }
                if let Some(s) = step {
                    s.walk(f);
                }
                body.walk_exprs(f);
            }
            StmtKind::Switch { cond, body } => {
                cond.walk(f);
                body.walk_exprs(f);
            }
            StmtKind::Case { value, stmt } => {
                if let Some(v) = value {
                    v.walk(f);
                }
                stmt.walk_exprs(f);
            }
            StmtKind::Label { stmt, .. } => stmt.walk_exprs(f),
            StmtKind::Return(Some(e)) => e.walk(f),
            StmtKind::Goto(_)
            | StmtKind::Return(None)
            | StmtKind::Break
            | StmtKind::Continue
            | StmtKind::Asm { .. }
            | StmtKind::Empty => {}
        }
    }
}

impl TranslationUnit {
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Function(f) => Some(f),
            _ => None,
        })
    }

    pub fn structs(&self) -> impl Iterator<Item = &StructDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Struct(s) => Some(s),
            _ => None,
        })
    }

    pub fn find_function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions().find(|f| f.sig.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::strukt("foo").ptr().to_string(), "struct foo *");
        assert_eq!(
            Type::Int {
                unsigned: true,
                rank: IntRank::Long
            }
            .to_string(),
            "unsigned long"
        );
    }

    #[test]
    fn type_base_strips_pointers() {
        let t = Type::strukt("req").ptr().ptr();
        assert_eq!(t.struct_name(), Some("req"));
        let arr = Type::Array(Box::new(Type::strukt("sock").ptr()), Some(4));
        assert_eq!(arr.struct_name(), Some("sock"));
    }

    #[test]
    fn expr_walk_visits_all() {
        // a->b + f(c)
        let e = Expr {
            span: Span::DUMMY,
            kind: ExprKind::Binary(
                BinOp::Add,
                Box::new(Expr {
                    span: Span::DUMMY,
                    kind: ExprKind::Member {
                        base: Box::new(Expr {
                            span: Span::DUMMY,
                            kind: ExprKind::Ident("a".into()),
                        }),
                        field: "b".into(),
                        arrow: true,
                    },
                }),
                Box::new(Expr {
                    span: Span::DUMMY,
                    kind: ExprKind::Call {
                        callee: Box::new(Expr {
                            span: Span::DUMMY,
                            kind: ExprKind::Ident("f".into()),
                        }),
                        args: vec![Expr {
                            span: Span::DUMMY,
                            kind: ExprKind::Ident("c".into()),
                        }],
                    },
                }),
            ),
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 6);
    }
}
