//! Declaration specifiers and declarators.

use super::{Parser, SpecFlags};
use crate::ast::*;
use crate::error::{Error, Result};
use crate::intern::Name;
use crate::span::Span;
use crate::token::TokenKind;

impl Parser {
    /// Does the current token begin a type (declaration specifiers)?
    pub(crate) fn at_type_start(&self) -> bool {
        let Some(name) = self.peek().ident() else {
            return false;
        };
        matches!(
            name,
            "void"
                | "char"
                | "short"
                | "int"
                | "long"
                | "float"
                | "double"
                | "signed"
                | "unsigned"
                | "bool"
                | "_Bool"
                | "struct"
                | "union"
                | "enum"
                | "const"
                | "volatile"
                | "static"
                | "extern"
                | "inline"
                | "register"
                | "restrict"
                | "auto"
                | "typedef"
                | "typeof"
                | "__typeof__"
                | "__typeof"
        ) || self.typedefs.contains(name)
    }

    /// Heuristic: does a declaration start here? Covers `at_type_start`
    /// plus the `unknown_type *name` / `unknown_type name` patterns that
    /// appear when a typedef comes from an unseen header.
    pub(crate) fn at_decl_start(&self) -> bool {
        if self.at_type_start() {
            // `ident` alone could still be an expression if the next token
            // is an operator — but for real type keywords it's always a
            // declaration. For typedef names check what follows.
            if let Some(name) = self.peek().ident() {
                if self.typedefs.contains(name) {
                    return matches!(
                        self.peek_n(1),
                        TokenKind::Ident(_) | TokenKind::Star | TokenKind::LParen
                    ) && !matches!(self.peek_n(1), TokenKind::LParen if true)
                        || matches!(self.peek_n(1), TokenKind::Ident(_) | TokenKind::Star);
                }
            }
            return true;
        }
        // `foo_t x;` / `foo_t *x;` with unknown foo_t.
        if let TokenKind::Ident(name) = self.peek() {
            if crate::token::is_keyword(name) {
                return false;
            }
            match (self.peek_n(1), self.peek_n(2)) {
                // `T name ;/=/,/[/(`  — declaration
                (TokenKind::Ident(second), follow) if !crate::token::is_keyword(second) => {
                    matches!(
                        follow,
                        TokenKind::Semi
                            | TokenKind::Assign
                            | TokenKind::Comma
                            | TokenKind::LBracket
                    )
                }
                // `T *name ;/=/,` — declaration (disambiguates `a * b;`,
                // which as an expression statement would be dead code).
                (TokenKind::Star, TokenKind::Ident(second))
                    if !crate::token::is_keyword(second) =>
                {
                    matches!(
                        self.peek_n(3),
                        TokenKind::Semi | TokenKind::Assign | TokenKind::Comma
                    )
                }
                _ => false,
            }
        } else {
            false
        }
    }

    /// Parse declaration specifiers into a base type + flags.
    pub(crate) fn parse_decl_specifiers(&mut self) -> Result<(Type, SpecFlags)> {
        let mut flags = SpecFlags::default();
        let mut unsigned: Option<bool> = None;
        let mut rank: Option<IntRank> = None;
        let mut longs = 0u8;
        let mut base: Option<Type> = None;
        let start = self.span();
        loop {
            self.skip_attributes();
            let Some(name) = self.peek().ident().map(str::to_string) else {
                break;
            };
            match name.as_str() {
                "const" | "volatile" | "register" | "restrict" | "auto" => {
                    self.bump();
                }
                "static" => {
                    flags.is_static = true;
                    self.bump();
                }
                "extern" => {
                    flags.is_extern = true;
                    self.bump();
                }
                "inline" | "__inline" | "__inline__" => {
                    flags.is_inline = true;
                    self.bump();
                }
                "typedef" => {
                    flags.is_typedef = true;
                    self.bump();
                }
                "signed" => {
                    unsigned = Some(false);
                    self.bump();
                }
                "unsigned" => {
                    unsigned = Some(true);
                    self.bump();
                }
                "void" => {
                    base = Some(Type::Void);
                    self.bump();
                }
                "bool" | "_Bool" => {
                    base = Some(Type::Bool);
                    self.bump();
                }
                "char" => {
                    rank = Some(IntRank::Char);
                    self.bump();
                }
                "short" => {
                    rank = Some(IntRank::Short);
                    self.bump();
                }
                "int" => {
                    if rank.is_none() && longs == 0 {
                        rank = Some(IntRank::Int);
                    }
                    self.bump();
                }
                "long" => {
                    longs += 1;
                    self.bump();
                }
                "float" => {
                    base = Some(Type::Float);
                    self.bump();
                }
                "typeof" | "__typeof__" | "__typeof" => {
                    // GNU typeof: capture as an opaque named type whose
                    // name is the canonical `typeof(...)` text, so
                    // printing round-trips.
                    self.bump();
                    self.expect(&TokenKind::LParen)?;
                    let inner = if self.at_type_start() {
                        let (b, _) = self.parse_decl_specifiers()?;
                        let (_, ty, _) = self.parse_declarator(b)?;
                        crate::pretty::print_decl(&ty, "")
                    } else {
                        let e = self.parse_expr()?;
                        crate::pretty::print_expr(&e)
                    };
                    self.expect(&TokenKind::RParen)?;
                    base = Some(Type::Named(format!("typeof({inner})").into()));
                }
                "double" => {
                    base = Some(Type::Double);
                    self.bump();
                }
                "struct" | "union" => {
                    let is_union = name == "union";
                    self.bump();
                    self.skip_attributes();
                    let tag = match self.peek() {
                        TokenKind::Ident(n) => {
                            let n = n.clone();
                            self.bump();
                            n
                        }
                        _ => Name::default(),
                    };
                    // Inline body in a declaration context (e.g. inside
                    // another struct): parse and discard the body shape —
                    // callers that need the fields use
                    // `try_parse_tag_definition` instead.
                    if self.at(&TokenKind::LBrace) {
                        self.bump();
                        let _fields = self.parse_struct_body()?;
                    }
                    base = Some(Type::Struct {
                        name: tag,
                        is_union,
                    });
                }
                "enum" => {
                    self.bump();
                    let tag = match self.peek() {
                        TokenKind::Ident(n) => {
                            let n = n.clone();
                            self.bump();
                            n
                        }
                        _ => Name::default(),
                    };
                    if self.at(&TokenKind::LBrace) {
                        // Skip the enumerator list.
                        let mut depth = 0usize;
                        loop {
                            match self.peek() {
                                TokenKind::LBrace => depth += 1,
                                TokenKind::RBrace => {
                                    depth -= 1;
                                    if depth == 0 {
                                        self.bump();
                                        break;
                                    }
                                }
                                TokenKind::Eof => break,
                                _ => {}
                            }
                            self.bump();
                        }
                    }
                    base = Some(Type::Enum(tag));
                }
                other => {
                    // Typedef name — only if we have no base yet and the
                    // name is known (or nothing else matched and an
                    // identifier follows, the unknown-typedef heuristic).
                    if base.is_none()
                        && rank.is_none()
                        && longs == 0
                        && unsigned.is_none()
                        && !crate::token::is_keyword(other)
                    {
                        let known = self.typedefs.contains(other);
                        let next_is_declaratorish =
                            matches!(self.peek_n(1), TokenKind::Ident(_) | TokenKind::Star);
                        if known || next_is_declaratorish {
                            base = Some(Type::Named(other.into()));
                            self.bump();
                        }
                    }
                    break;
                }
            }
            if base.is_some() {
                // A base type is set; stop unless qualifiers follow.
                if !matches!(
                    self.peek().ident(),
                    Some("const" | "volatile" | "restrict" | "static" | "extern" | "inline")
                ) {
                    break;
                }
            }
        }
        let ty = if let Some(b) = base {
            b
        } else if longs > 0 {
            Type::Int {
                unsigned: unsigned.unwrap_or(false),
                rank: if longs >= 2 {
                    IntRank::LongLong
                } else {
                    IntRank::Long
                },
            }
        } else if let Some(r) = rank {
            Type::Int {
                unsigned: unsigned.unwrap_or(false),
                rank: r,
            }
        } else if let Some(u) = unsigned {
            Type::Int {
                unsigned: u,
                rank: IntRank::Int,
            }
        } else {
            return Err(Error::parse(
                format!("expected type, found {}", self.peek().describe()),
                start,
            ));
        };
        Ok((ty, flags))
    }

    /// Parse a declarator against a base type. Returns the declared name
    /// (empty for abstract declarators), the full type, and the name span.
    ///
    /// Handles pointers (`*`, with qualifiers), parenthesized declarators
    /// (function pointers), array suffixes, and function parameter lists.
    pub(crate) fn parse_declarator(&mut self, base: Type) -> Result<(Name, Type, Span)> {
        let mut ty = base;
        self.skip_attributes();
        while self.at(&TokenKind::Star) {
            self.bump();
            // qualifiers after `*`
            while matches!(self.peek().ident(), Some("const" | "volatile" | "restrict")) {
                self.bump();
            }
            self.skip_attributes();
            ty = ty.ptr();
        }
        self.skip_attributes();
        // Direct declarator.
        let (name, name_span, inner_is_ptr) = match self.peek().clone() {
            TokenKind::Ident(n) if !crate::token::is_keyword(&n) => {
                let sp = self.span();
                self.bump();
                (n, sp, false)
            }
            TokenKind::LParen if self.is_paren_declarator() => {
                // `( * name )` — function pointer / grouped declarator.
                self.bump();
                while self.eat(&TokenKind::Star) {
                    while matches!(self.peek().ident(), Some("const" | "volatile" | "restrict")) {
                        self.bump();
                    }
                }
                self.skip_attributes();
                let (n, sp) = match self.peek().clone() {
                    TokenKind::Ident(n) => {
                        let sp = self.span();
                        self.bump();
                        (n, sp)
                    }
                    _ => (Name::default(), self.span()),
                };
                self.expect(&TokenKind::RParen)?;
                (n, sp, true)
            }
            _ => (Name::default(), self.span(), false),
        };
        // Suffixes: arrays and parameter lists.
        loop {
            if self.at(&TokenKind::LBracket) {
                self.bump();
                let len = match self.peek() {
                    TokenKind::Int { value, .. } => {
                        let v = *value;
                        self.bump();
                        Some(v)
                    }
                    TokenKind::RBracket => None,
                    _ => {
                        // Arbitrary constant expression; evaluate lazily as
                        // unknown length.
                        let _ = self.parse_conditional()?;
                        None
                    }
                };
                self.expect(&TokenKind::RBracket)?;
                ty = Type::Array(Box::new(ty), len);
                continue;
            }
            if self.at(&TokenKind::LParen) {
                self.bump();
                let (params, variadic) = self.parse_param_list()?;
                self.expect(&TokenKind::RParen)?;
                let ptypes = params.iter().map(|p| p.ty.clone()).collect();
                self.last_params = params;
                let fty = Type::Func {
                    ret: Box::new(ty),
                    params: ptypes,
                    variadic,
                };
                ty = if inner_is_ptr { fty.ptr() } else { fty };
                self.skip_attributes();
                continue;
            }
            break;
        }
        self.skip_attributes();
        Ok((name, ty, name_span))
    }

    fn is_paren_declarator(&self) -> bool {
        // `(*` or `(^` introduces a grouped declarator; `(type` would be a
        // parameter list of an unnamed function declarator (rare; ignore).
        matches!(self.peek_n(1), TokenKind::Star)
    }

    fn parse_param_list(&mut self) -> Result<(Vec<Param>, bool)> {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.at(&TokenKind::RParen) {
            return Ok((params, variadic));
        }
        // `(void)`
        if self.at_ident("void") && self.peek_n(1) == &TokenKind::RParen {
            self.bump();
            return Ok((params, variadic));
        }
        loop {
            if self.at(&TokenKind::Ellipsis) {
                self.bump();
                variadic = true;
                break;
            }
            let start = self.span();
            let (base, _) = self.parse_decl_specifiers()?;
            let (name, ty, _) = self.parse_declarator(base)?;
            params.push(Param {
                name,
                ty,
                span: start.to(self.prev_span()),
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok((params, variadic))
    }

    /// Retrieve the parameters recorded for the most recently parsed
    /// function declarator (see `last_params`). Falls back to synthesized
    /// unnamed parameters when counts disagree (nested declarators).
    pub(crate) fn take_last_params(&mut self, expected: usize) -> Vec<Param> {
        if self.last_params.len() == expected {
            std::mem::take(&mut self.last_params)
        } else {
            std::mem::take(&mut self.last_params)
                .into_iter()
                .take(expected)
                .collect()
        }
    }
}
