//! Parser unit tests: each exercises a distinct grammar corner used by
//! kernel barrier code.

use crate::ast::*;
use crate::parse_string;

fn parse_ok(src: &str) -> TranslationUnit {
    let out = parse_string("test.c", src).expect("front end");
    assert!(out.errors.is_empty(), "parse errors: {:#?}", out.errors);
    out.unit
}

fn only_fn(src: &str) -> FunctionDef {
    let unit = parse_ok(src);
    let mut fns: Vec<_> = unit.functions().cloned().collect();
    assert_eq!(fns.len(), 1, "expected exactly one function");
    fns.pop().unwrap()
}

#[test]
fn empty_unit() {
    assert!(parse_ok("").items.is_empty());
}

#[test]
fn struct_definition() {
    let unit = parse_ok("struct my_struct { int x; int init; struct other *next; };");
    let s = unit.structs().next().unwrap();
    assert_eq!(s.name, "my_struct");
    assert_eq!(s.fields.len(), 3);
    assert_eq!(s.fields[0].name, "x");
    assert_eq!(s.fields[2].ty, Type::strukt("other").ptr());
}

#[test]
fn union_definition() {
    let unit = parse_ok("union u { int a; char b; };");
    let s = unit.structs().next().unwrap();
    assert!(s.is_union);
}

#[test]
fn anonymous_nested_struct_flattens() {
    let unit = parse_ok("struct s { int a; struct { int b; int c; }; int d; };");
    let s = unit.structs().next().unwrap();
    let names: Vec<_> = s.fields.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "c", "d"]);
}

#[test]
fn struct_with_trailing_declarator() {
    let unit = parse_ok("struct s { int a; } instance;");
    assert_eq!(unit.items.len(), 2);
    assert!(matches!(unit.items[0], Item::Struct(_)));
    match &unit.items[1] {
        Item::Global(g) => {
            assert_eq!(g.decls[0].name, "instance");
            assert_eq!(g.decls[0].ty, Type::strukt("s"));
        }
        other => panic!("expected global, got {other:?}"),
    }
}

#[test]
fn bitfields_parse() {
    let unit = parse_ok("struct s { unsigned int a : 3; unsigned int b : 5; };");
    let s = unit.structs().next().unwrap();
    assert_eq!(s.fields.len(), 2);
}

#[test]
fn enum_definition() {
    let unit = parse_ok("enum state { IDLE, BUSY = 4, DONE };");
    match &unit.items[0] {
        Item::Enum(e) => {
            assert_eq!(e.name, "state");
            assert_eq!(e.variants.len(), 3);
            assert_eq!(e.variants[1].0, "BUSY");
            assert!(e.variants[1].1.is_some());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn typedef_registers_name() {
    let unit = parse_ok("typedef unsigned long long u64_alias; u64_alias v;");
    assert!(matches!(unit.items[0], Item::Typedef(_)));
    match &unit.items[1] {
        Item::Global(g) => assert_eq!(g.decls[0].ty, Type::Named("u64_alias".into())),
        other => panic!("{other:?}"),
    }
}

#[test]
fn function_with_params() {
    let f = only_fn("static int add(int a, long b) { return a + b; }");
    assert_eq!(f.sig.name, "add");
    assert!(f.sig.is_static);
    assert_eq!(f.sig.params.len(), 2);
    assert_eq!(f.sig.params[0].name, "a");
    assert_eq!(
        f.sig.params[1].ty,
        Type::Int {
            unsigned: false,
            rank: IntRank::Long
        }
    );
}

#[test]
fn function_void_params() {
    let f = only_fn("void f(void) { }");
    assert!(f.sig.params.is_empty());
    assert_eq!(f.sig.ret, Type::Void);
}

#[test]
fn function_struct_pointer_param() {
    let f = only_fn("void reader(struct my_struct *a) { }");
    assert_eq!(f.sig.params[0].ty, Type::strukt("my_struct").ptr());
}

#[test]
fn variadic_function() {
    let f = only_fn("int printk_like(const char *fmt, ...) { return 0; }");
    assert!(f.sig.variadic);
    assert_eq!(f.sig.params.len(), 1);
}

#[test]
fn prototype() {
    let unit = parse_ok("extern int foo(struct s *p);");
    match &unit.items[0] {
        Item::Prototype(sig) => {
            assert_eq!(sig.name, "foo");
            assert_eq!(sig.params.len(), 1);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn global_with_initializer() {
    let unit = parse_ok("static int threshold = 42;");
    match &unit.items[0] {
        Item::Global(g) => {
            assert!(matches!(
                g.decls[0].init.as_ref().unwrap().kind,
                ExprKind::IntLit { value: 42, .. }
            ));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn multi_declarator_global() {
    let unit = parse_ok("int a, *b, c[4];");
    match &unit.items[0] {
        Item::Global(g) => {
            assert_eq!(g.decls.len(), 3);
            assert_eq!(g.decls[1].ty, Type::int().ptr());
            assert_eq!(g.decls[2].ty, Type::Array(Box::new(Type::int()), Some(4)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn local_declarations() {
    let f = only_fn("void f(void) { int i = 0; struct s *p; u32 x; }");
    assert_eq!(f.body.len(), 3);
    assert!(matches!(f.body[0].kind, StmtKind::Decl(_)));
    match &f.body[2].kind {
        StmtKind::Decl(d) => assert_eq!(d.decls[0].ty, Type::Named("u32".into())),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_typedef_heuristic() {
    // `mytype_t` was never declared but `mytype_t *x;` must parse as a decl.
    let f = only_fn("void f(void) { mytype_t *x; x = 0; }");
    assert!(matches!(f.body[0].kind, StmtKind::Decl(_)));
    assert!(matches!(f.body[1].kind, StmtKind::Expr(_)));
}

#[test]
fn if_else_chain() {
    let f = only_fn("void f(int a) { if (a) return; else if (a > 2) a = 0; else a = 1; }");
    match &f.body[0].kind {
        StmtKind::If { else_branch, .. } => assert!(else_branch.is_some()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn loops() {
    let f = only_fn(
        "void f(int n) { while (n) n--; do { n++; } while (n < 4); for (int i = 0; i < n; i++) ; }",
    );
    assert!(matches!(f.body[0].kind, StmtKind::While { .. }));
    assert!(matches!(f.body[1].kind, StmtKind::DoWhile { .. }));
    assert!(matches!(f.body[2].kind, StmtKind::For { .. }));
}

#[test]
fn for_without_clauses() {
    let f = only_fn("void f(void) { for (;;) break; }");
    match &f.body[0].kind {
        StmtKind::For {
            init, cond, step, ..
        } => {
            assert!(init.is_none());
            assert!(cond.is_none());
            assert!(step.is_none());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn switch_cases() {
    let f =
        only_fn("void f(int a) { switch (a) { case 1: a = 0; break; case 2: default: a = 9; } }");
    assert!(matches!(f.body[0].kind, StmtKind::Switch { .. }));
}

#[test]
fn goto_and_labels() {
    let f = only_fn("void f(int a) { if (a) goto out; a = 1; out: return; }");
    assert!(matches!(f.body[2].kind, StmtKind::Label { .. }));
}

#[test]
fn label_at_block_end() {
    let f = only_fn("void f(int a) { if (a) goto out; a = 1; out: }");
    match &f.body[2].kind {
        StmtKind::Label { stmt, .. } => assert!(matches!(stmt.kind, StmtKind::Empty)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn member_access_chain() {
    let f = only_fn("void f(struct a *p) { p->b.c->d = 1; }");
    match &f.body[0].kind {
        StmtKind::Expr(e) => match &e.kind {
            ExprKind::Assign(AssignOp::Assign, lhs, _) => match &lhs.kind {
                ExprKind::Member {
                    field, arrow: true, ..
                } => assert_eq!(field, "d"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn precedence() {
    let f = only_fn("int f(int a, int b) { return a + b * 2 == a << 1; }");
    match &f.body[0].kind {
        StmtKind::Return(Some(e)) => match &e.kind {
            // `==` binds loosest: (a + b*2) == (a << 1)
            ExprKind::Binary(BinOp::Eq, _, _) => {}
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn ternary() {
    let f = only_fn("int f(int a) { return a ? a : -a; }");
    match &f.body[0].kind {
        StmtKind::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::Ternary { .. })),
        other => panic!("{other:?}"),
    }
}

#[test]
fn cast_expression() {
    let f = only_fn("void f(void *p) { struct s *q = (struct s *)p; }");
    match &f.body[0].kind {
        StmtKind::Decl(d) => {
            assert!(matches!(
                d.decls[0].init.as_ref().unwrap().kind,
                ExprKind::Cast(_, _)
            ));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn paren_expr_not_cast() {
    // `(a) - b` where `a` is a variable, not a type.
    let f = only_fn("int f(int a, int b) { return (a) - b; }");
    match &f.body[0].kind {
        StmtKind::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::Binary(BinOp::Sub, _, _))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn sizeof_both_forms() {
    let f = only_fn("void f(int a) { int x = sizeof(struct s); int y = sizeof a; }");
    match &f.body[0].kind {
        StmtKind::Decl(d) => assert!(matches!(
            d.decls[0].init.as_ref().unwrap().kind,
            ExprKind::SizeofType(_)
        )),
        other => panic!("{other:?}"),
    }
    match &f.body[1].kind {
        StmtKind::Decl(d) => assert!(matches!(
            d.decls[0].init.as_ref().unwrap().kind,
            ExprKind::SizeofExpr(_)
        )),
        other => panic!("{other:?}"),
    }
}

#[test]
fn compound_assignment_ops() {
    let f = only_fn("void f(int a) { a += 1; a <<= 2; a |= 4; }");
    for stmt in &f.body {
        assert!(matches!(
            stmt.kind,
            StmtKind::Expr(Expr {
                kind: ExprKind::Assign(_, _, _),
                ..
            })
        ));
    }
}

#[test]
fn pre_post_incdec() {
    let f = only_fn("void f(int a) { ++a; a--; }");
    match &f.body[0].kind {
        StmtKind::Expr(e) => assert!(matches!(e.kind, ExprKind::Unary(UnOp::PreInc, _))),
        other => panic!("{other:?}"),
    }
    match &f.body[1].kind {
        StmtKind::Expr(e) => assert!(matches!(e.kind, ExprKind::Post(PostOp::Dec, _))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn array_index_assignment() {
    let f = only_fn("void f(struct r *r, struct sock *sk) { r->socks[r->num] = sk; }");
    match &f.body[0].kind {
        StmtKind::Expr(e) => match &e.kind {
            ExprKind::Assign(_, lhs, _) => assert!(matches!(lhs.kind, ExprKind::Index(_, _))),
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn function_pointer_declarator() {
    let unit = parse_ok("int (*handler)(struct ev *e);");
    match &unit.items[0] {
        Item::Global(g) => {
            assert!(matches!(g.decls[0].ty, Type::Ptr(_)));
            assert_eq!(g.decls[0].name, "handler");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn designated_initializer() {
    let unit = parse_ok("struct ops o = { .open = do_open, .flags = 3 };");
    match &unit.items[0] {
        Item::Global(g) => match &g.decls[0].init.as_ref().unwrap().kind {
            ExprKind::InitList(inits) => {
                assert_eq!(inits[0].designator.as_deref(), Some("open"));
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn statement_expression() {
    let f = only_fn("int f(int a) { int x = ({ int t = a; t + 1; }); return x; }");
    match &f.body[0].kind {
        StmtKind::Decl(d) => assert!(matches!(
            d.decls[0].init.as_ref().unwrap().kind,
            ExprKind::StmtExpr(_)
        )),
        other => panic!("{other:?}"),
    }
}

#[test]
fn kernel_attributes_skipped() {
    let unit = parse_ok(
        "static __always_inline int __init probe(struct dev *d) __attribute__((cold)) { return 0; }",
    );
    assert_eq!(unit.functions().count(), 1);
}

#[test]
fn rcu_annotations_skipped() {
    let unit = parse_ok("struct s { struct other __rcu *ptr; int __percpu *ctr; };");
    let s = unit.structs().next().unwrap();
    assert_eq!(s.fields.len(), 2);
    assert_eq!(s.fields[0].ty, Type::strukt("other").ptr());
}

#[test]
fn error_recovery_keeps_later_items() {
    let out = parse_string("t.c", "int x = ; int good(void) { return 1; }").unwrap();
    assert!(!out.errors.is_empty());
    assert!(out.unit.find_function("good").is_some());
}

#[test]
fn comma_operator() {
    let f = only_fn("void f(int a, int b) { a = 1, b = 2; }");
    match &f.body[0].kind {
        StmtKind::Expr(e) => assert!(matches!(e.kind, ExprKind::Comma(_, _))),
        other => panic!("{other:?}"),
    }
}

#[test]
fn barrier_calls_parse_as_calls() {
    let f = only_fn("void w(struct s *b) { b->y = 1; smp_wmb(); b->init = 1; }");
    assert_eq!(f.body.len(), 3);
    match &f.body[1].kind {
        StmtKind::Expr(e) => assert_eq!(e.call_name(), Some("smp_wmb")),
        other => panic!("{other:?}"),
    }
}

#[test]
fn spans_point_into_source() {
    let src = "void w(struct s *b) { b->y = 1; smp_wmb(); }";
    let out = parse_string("t.c", src).unwrap();
    let f = out.unit.functions().next().unwrap();
    let barrier_stmt = &f.body[1];
    assert_eq!(barrier_stmt.span.slice(src), "smp_wmb();");
}

#[test]
fn negative_enum_value() {
    let unit = parse_ok("enum e { NEG = -1, POS = 1 };");
    match &unit.items[0] {
        Item::Enum(e) => assert_eq!(e.variants.len(), 2),
        other => panic!("{other:?}"),
    }
}

#[test]
fn nested_blocks() {
    let f = only_fn("void f(void) { { { int deep = 1; } } }");
    assert!(matches!(f.body[0].kind, StmtKind::Block(_)));
}

#[test]
fn asm_statement() {
    let f = only_fn(r#"void f(void) { asm volatile("mfence" ::: "memory"); }"#);
    match &f.body[0].kind {
        StmtKind::Asm { volatile, body } => {
            assert!(volatile);
            assert!(body.contains("mfence"), "{body}");
            assert!(body.contains("memory"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn asm_between_statements() {
    let f = only_fn(
        r#"void f(struct s *p) { p->a = 1; __asm__ __volatile__("" : : : "memory"); p->b = 2; }"#,
    );
    assert_eq!(f.body.len(), 3);
    assert!(matches!(f.body[1].kind, StmtKind::Asm { .. }));
}

#[test]
fn asm_with_operands() {
    let f = only_fn(r#"void f(unsigned long x) { asm("bsf %1,%0" : "=r" (x) : "rm" (x)); }"#);
    assert!(matches!(
        f.body[0].kind,
        StmtKind::Asm {
            volatile: false,
            ..
        }
    ));
}

#[test]
fn typeof_declarations() {
    let f = only_fn("void f(struct s *p) { typeof(p->len) saved = p->len; saved = saved + 1; }");
    match &f.body[0].kind {
        StmtKind::Decl(d) => {
            assert_eq!(d.decls[0].name, "saved");
            assert_eq!(d.decls[0].ty, Type::Named("typeof(p->len)".into()));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn typeof_roundtrips_through_printer() {
    let src = "void f(struct s *p) { typeof(p->len) saved = p->len; }";
    let out = parse_string("t.c", src).unwrap();
    assert!(out.errors.is_empty());
    let printed = crate::pretty::print_unit(&out.unit);
    let again = parse_string("t.c", &printed).unwrap();
    assert!(again.errors.is_empty(), "{printed}\n{:?}", again.errors);
}

#[test]
fn string_concatenation() {
    let f = only_fn(r#"void f(void) { printk("a" "b"); }"#);
    match &f.body[0].kind {
        StmtKind::Expr(e) => match &e.kind {
            ExprKind::Call { args, .. } => match &args[0].kind {
                ExprKind::StrLit(s) => assert_eq!(s, r#""a""b""#),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}
