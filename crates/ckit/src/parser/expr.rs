//! Expression parsing — precedence climbing over the full C operator set.

use super::Parser;
use crate::ast::*;
use crate::error::{Error, Result};
#[cfg(test)]
use crate::span::Span;
use crate::token::TokenKind;

impl Parser {
    /// Full expression, including the comma operator.
    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        let first = self.parse_assignment()?;
        if self.at(&TokenKind::Comma) {
            let mut expr = first;
            while self.eat(&TokenKind::Comma) {
                let rhs = self.parse_assignment()?;
                let span = expr.span.to(rhs.span);
                expr = Expr {
                    kind: ExprKind::Comma(Box::new(expr), Box::new(rhs)),
                    span,
                };
            }
            return Ok(expr);
        }
        Ok(first)
    }

    /// Assignment expression (no top-level comma) — the grammar production
    /// used for call arguments and initializers.
    pub(crate) fn parse_assignment(&mut self) -> Result<Expr> {
        let lhs = self.parse_conditional()?;
        let op = match self.peek() {
            TokenKind::Assign => AssignOp::Assign,
            TokenKind::PlusEq => AssignOp::Add,
            TokenKind::MinusEq => AssignOp::Sub,
            TokenKind::StarEq => AssignOp::Mul,
            TokenKind::SlashEq => AssignOp::Div,
            TokenKind::PercentEq => AssignOp::Rem,
            TokenKind::AmpEq => AssignOp::BitAnd,
            TokenKind::PipeEq => AssignOp::BitOr,
            TokenKind::CaretEq => AssignOp::BitXor,
            TokenKind::ShlEq => AssignOp::Shl,
            TokenKind::ShrEq => AssignOp::Shr,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_assignment()?; // right-associative
        let span = lhs.span.to(rhs.span);
        Ok(Expr {
            kind: ExprKind::Assign(op, Box::new(lhs), Box::new(rhs)),
            span,
        })
    }

    /// Conditional (ternary) expression; also the "constant expression"
    /// production used by enum values, case labels, bitfields.
    pub(crate) fn parse_conditional(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if !self.eat(&TokenKind::Question) {
            return Ok(cond);
        }
        let then_expr = self.parse_expr()?;
        self.expect(&TokenKind::Colon)?;
        let else_expr = self.parse_assignment()?;
        let span = cond.span.to(else_expr.span);
        Ok(Expr {
            kind: ExprKind::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            },
            span,
        })
    }

    fn binop(kind: &TokenKind) -> Option<(BinOp, u8)> {
        use TokenKind::*;
        Some(match kind {
            PipePipe => (BinOp::Or, 1),
            AmpAmp => (BinOp::And, 2),
            Pipe => (BinOp::BitOr, 3),
            Caret => (BinOp::BitXor, 4),
            Amp => (BinOp::BitAnd, 5),
            EqEq => (BinOp::Eq, 6),
            Ne => (BinOp::Ne, 6),
            Lt => (BinOp::Lt, 7),
            Gt => (BinOp::Gt, 7),
            Le => (BinOp::Le, 7),
            Ge => (BinOp::Ge, 7),
            Shl => (BinOp::Shl, 8),
            Shr => (BinOp::Shr, 8),
            Plus => (BinOp::Add, 9),
            Minus => (BinOp::Sub, 9),
            Star => (BinOp::Mul, 10),
            Slash => (BinOp::Div, 10),
            Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, bp)) = Self::binop(self.peek()) {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(bp + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Plus => Some(UnOp::Plus),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::Addr),
            TokenKind::PlusPlus => Some(UnOp::PreInc),
            TokenKind::MinusMinus => Some(UnOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary()?;
            let span = start.to(operand.span);
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(operand)),
                span,
            });
        }
        if self.at_ident("sizeof") {
            self.bump();
            if self.at(&TokenKind::LParen) && self.type_in_parens() {
                self.bump();
                let (base, _) = self.parse_decl_specifiers()?;
                let (_, ty, _) = self.parse_declarator(base)?;
                let end = self.expect(&TokenKind::RParen)?;
                return Ok(Expr {
                    kind: ExprKind::SizeofType(ty),
                    span: start.to(end),
                });
            }
            let operand = self.parse_unary()?;
            let span = start.to(operand.span);
            return Ok(Expr {
                kind: ExprKind::SizeofExpr(Box::new(operand)),
                span,
            });
        }
        // Cast or compound literal: `(type) expr` / `(type){...}`.
        if self.at(&TokenKind::LParen) && self.type_in_parens() {
            self.bump();
            let (base, _) = self.parse_decl_specifiers()?;
            let (_, ty, _) = self.parse_declarator(base)?;
            self.expect(&TokenKind::RParen)?;
            if self.at(&TokenKind::LBrace) {
                let init = self.parse_initializer()?;
                let span = start.to(init.span);
                return Ok(Expr {
                    kind: ExprKind::Cast(ty, Box::new(init)),
                    span,
                });
            }
            let operand = self.parse_unary()?;
            let span = start.to(operand.span);
            return Ok(Expr {
                kind: ExprKind::Cast(ty, Box::new(operand)),
                span,
            });
        }
        self.parse_postfix()
    }

    /// Lookahead: do the tokens after the current `(` start a type?
    fn type_in_parens(&self) -> bool {
        let next = self.peek_n(1);
        let Some(name) = next.ident() else {
            return false;
        };
        let typeish = matches!(
            name,
            "void"
                | "char"
                | "short"
                | "int"
                | "long"
                | "float"
                | "double"
                | "signed"
                | "unsigned"
                | "bool"
                | "_Bool"
                | "struct"
                | "union"
                | "enum"
                | "const"
                | "volatile"
        ) || self.typedefs.contains(name);
        if !typeish {
            return false;
        }
        // Guard against a parenthesized expression whose first identifier
        // happens to be a shadowing variable: a cast's type is followed by
        // `*`, `)`, an identifier (struct tag), or another specifier.
        match name {
            "struct" | "union" | "enum" => true,
            _ => !matches!(
                self.peek_n(2),
                TokenKind::Dot
                    | TokenKind::Arrow
                    | TokenKind::LBracket
                    | TokenKind::PlusPlus
                    | TokenKind::MinusMinus
                    | TokenKind::Assign
                    | TokenKind::Plus
                    | TokenKind::Minus
                    | TokenKind::Slash
                    | TokenKind::Percent
                    | TokenKind::EqEq
                    | TokenKind::Ne
                    | TokenKind::Lt
                    | TokenKind::Gt
                    | TokenKind::Le
                    | TokenKind::Ge
                    | TokenKind::AmpAmp
                    | TokenKind::PipePipe
                    | TokenKind::Question
                    | TokenKind::Comma
            ),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_assignment()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(&TokenKind::RParen)?;
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Call {
                            callee: Box::new(expr),
                            args,
                        },
                        span,
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.parse_expr()?;
                    let end = self.expect(&TokenKind::RBracket)?;
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Index(Box::new(expr), Box::new(index)),
                        span,
                    };
                }
                TokenKind::Dot | TokenKind::Arrow => {
                    let arrow = self.at(&TokenKind::Arrow);
                    self.bump();
                    let (field, fspan) = self.expect_ident()?;
                    let span = expr.span.to(fspan);
                    expr = Expr {
                        kind: ExprKind::Member {
                            base: Box::new(expr),
                            field,
                            arrow,
                        },
                        span,
                    };
                }
                TokenKind::PlusPlus => {
                    let end = self.span();
                    self.bump();
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Post(PostOp::Inc, Box::new(expr)),
                        span,
                    };
                }
                TokenKind::MinusMinus => {
                    let end = self.span();
                    self.bump();
                    let span = expr.span.to(end);
                    expr = Expr {
                        kind: ExprKind::Post(PostOp::Dec, Box::new(expr)),
                        span,
                    };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                if crate::token::is_keyword(&name) && name != "sizeof" {
                    return Err(Error::parse(
                        format!("unexpected keyword `{name}` in expression"),
                        span,
                    ));
                }
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Ident(name),
                    span,
                })
            }
            TokenKind::Int { raw, value } => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit { raw, value },
                    span,
                })
            }
            TokenKind::Float(raw) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::FloatLit(raw),
                    span,
                })
            }
            TokenKind::Str(s) => {
                self.bump();
                // Adjacent string literals concatenate.
                let mut text = s;
                while let TokenKind::Str(next) = self.peek() {
                    text.push_str(next);
                    self.bump();
                }
                Ok(Expr {
                    kind: ExprKind::StrLit(text),
                    span: span.to(self.prev_span()),
                })
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::CharLit(c),
                    span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                // GNU statement expression `({ ... })`.
                if self.at(&TokenKind::LBrace) {
                    self.bump();
                    let stmts = self.parse_block_stmts()?;
                    let end = self.expect(&TokenKind::RParen)?;
                    return Ok(Expr {
                        kind: ExprKind::StmtExpr(stmts),
                        span: span.to(end),
                    });
                }
                let inner = self.parse_expr()?;
                let end = self.expect(&TokenKind::RParen)?;
                Ok(Expr {
                    kind: inner.kind,
                    span: span.to(end),
                })
            }
            TokenKind::LBrace => self.parse_initializer(),
            other => Err(Error::parse(
                format!("expected expression, found {}", other.describe()),
                span,
            )),
        }
    }

    /// Initializer: either a plain assignment expression or a brace list
    /// with optional designators.
    pub(crate) fn parse_initializer(&mut self) -> Result<Expr> {
        if !self.at(&TokenKind::LBrace) {
            return self.parse_assignment();
        }
        let start = self.span();
        self.bump();
        let mut inits = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at_eof() {
            let designator = if self.at(&TokenKind::Dot) {
                self.bump();
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                Some(name)
            } else if self.at(&TokenKind::LBracket) {
                // `[idx] = val` array designator: record no field name.
                self.bump();
                let _ = self.parse_conditional()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Assign)?;
                None
            } else {
                None
            };
            let value = self.parse_initializer()?;
            inits.push(Initializer { designator, value });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let end = self.expect(&TokenKind::RBrace)?;
        Ok(Expr {
            kind: ExprKind::InitList(inits),
            span: start.to(end),
        })
    }

    /// Span helper for tests.
    #[cfg(test)]
    pub(crate) fn _span_of(e: &Expr) -> Span {
        e.span
    }
}
