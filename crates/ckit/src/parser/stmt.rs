//! Statement parsing.

use super::Parser;
use crate::ast::*;
use crate::error::Result;
use crate::token::TokenKind;

impl Parser {
    /// Parse statements until the closing `}` of the current block (the
    /// opening brace has been consumed by the caller).
    pub(crate) fn parse_block_stmts(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at_eof() {
            stmts.push(self.parse_stmt()?);
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(stmts)
    }

    pub(crate) fn parse_stmt(&mut self) -> Result<Stmt> {
        let start = self.span();
        // Label: `name: stmt` (but not `default:` which is handled below,
        // and not ternary — a label is an identifier directly followed by
        // `:` at statement position).
        if let TokenKind::Ident(name) = self.peek() {
            if !crate::token::is_keyword(name) && self.peek_n(1) == &TokenKind::Colon {
                let name = name.clone();
                self.bump();
                self.bump();
                // A label can end a block: `out: ;` or `out: }`. Treat a
                // following `}` as labeling an empty statement.
                let stmt = if self.at(&TokenKind::RBrace) {
                    Stmt {
                        kind: StmtKind::Empty,
                        span: self.prev_span(),
                    }
                } else {
                    self.parse_stmt()?
                };
                let span = start.to(stmt.span);
                return Ok(Stmt {
                    kind: StmtKind::Label {
                        name,
                        stmt: Box::new(stmt),
                    },
                    span,
                });
            }
        }
        if self.at(&TokenKind::LBrace) {
            self.bump();
            let stmts = self.parse_block_stmts()?;
            return Ok(Stmt {
                kind: StmtKind::Block(stmts),
                span: start.to(self.prev_span()),
            });
        }
        if self.eat(&TokenKind::Semi) {
            return Ok(Stmt {
                kind: StmtKind::Empty,
                span: start,
            });
        }
        if let Some(kw) = self.peek().ident() {
            match kw {
                "asm" | "__asm__" | "__asm" => return self.parse_asm(),
                "if" => return self.parse_if(),
                "while" => return self.parse_while(),
                "do" => return self.parse_do_while(),
                "for" => return self.parse_for(),
                "switch" => return self.parse_switch(),
                "case" => {
                    self.bump();
                    let value = self.parse_conditional()?;
                    // GNU case ranges `case A ... B:` — keep the low bound.
                    if self.at(&TokenKind::Ellipsis) {
                        self.bump();
                        let _ = self.parse_conditional()?;
                    }
                    self.expect(&TokenKind::Colon)?;
                    let stmt = if self.at(&TokenKind::RBrace) {
                        Stmt {
                            kind: StmtKind::Empty,
                            span: self.prev_span(),
                        }
                    } else {
                        self.parse_stmt()?
                    };
                    let span = start.to(stmt.span);
                    return Ok(Stmt {
                        kind: StmtKind::Case {
                            value: Some(value),
                            stmt: Box::new(stmt),
                        },
                        span,
                    });
                }
                "default" => {
                    self.bump();
                    self.expect(&TokenKind::Colon)?;
                    let stmt = if self.at(&TokenKind::RBrace) {
                        Stmt {
                            kind: StmtKind::Empty,
                            span: self.prev_span(),
                        }
                    } else {
                        self.parse_stmt()?
                    };
                    let span = start.to(stmt.span);
                    return Ok(Stmt {
                        kind: StmtKind::Case {
                            value: None,
                            stmt: Box::new(stmt),
                        },
                        span,
                    });
                }
                "goto" => {
                    self.bump();
                    let (label, _) = self.expect_ident()?;
                    let span = start.to(self.span());
                    self.expect(&TokenKind::Semi)?;
                    return Ok(Stmt {
                        kind: StmtKind::Goto(label),
                        span,
                    });
                }
                "return" => {
                    self.bump();
                    let value = if self.at(&TokenKind::Semi) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    let span = start.to(self.span());
                    self.expect(&TokenKind::Semi)?;
                    return Ok(Stmt {
                        kind: StmtKind::Return(value),
                        span,
                    });
                }
                "break" => {
                    self.bump();
                    let span = start.to(self.span());
                    self.expect(&TokenKind::Semi)?;
                    return Ok(Stmt {
                        kind: StmtKind::Break,
                        span,
                    });
                }
                "continue" => {
                    self.bump();
                    let span = start.to(self.span());
                    self.expect(&TokenKind::Semi)?;
                    return Ok(Stmt {
                        kind: StmtKind::Continue,
                        span,
                    });
                }
                _ => {}
            }
        }
        // Declaration?
        if self.at_decl_start() && !self.at_ident("sizeof") {
            let decl = self.parse_local_decl()?;
            let span = decl.span;
            return Ok(Stmt {
                kind: StmtKind::Decl(decl),
                span,
            });
        }
        // Expression statement.
        let expr = self.parse_expr()?;
        let span = start.to(self.span());
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Expr(expr),
            span,
        })
    }

    pub(crate) fn parse_local_decl(&mut self) -> Result<DeclStmt> {
        let start = self.span();
        let (base, _flags) = self.parse_decl_specifiers()?;
        let mut decls = Vec::new();
        loop {
            let (name, ty, dspan) = self.parse_declarator(base.clone())?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            decls.push(Declarator {
                name,
                ty,
                init,
                span: dspan,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let span = start.to(self.span());
        self.expect(&TokenKind::Semi)?;
        Ok(DeclStmt { decls, span })
    }

    /// `asm [volatile|goto] ( ... ) ;` — the parenthesized blob is kept as
    /// raw token text.
    fn parse_asm(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // asm
        let mut volatile = false;
        while let Some(q) = self.peek().ident() {
            match q {
                "volatile" | "__volatile__" | "__volatile" => {
                    volatile = true;
                    self.bump();
                }
                "goto" | "inline" => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::LParen)?;
        let mut body = String::new();
        let mut depth = 1usize;
        loop {
            match self.peek() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                }
                TokenKind::Eof => {
                    return Err(crate::error::Error::parse(
                        "unterminated asm statement",
                        start,
                    ))
                }
                _ => {}
            }
            let span = self.span();
            let k = self.bump();
            if !body.is_empty() {
                body.push(' ');
            }
            match &k {
                TokenKind::Ident(s) => body.push_str(s),
                TokenKind::Str(s) => body.push_str(s),
                TokenKind::Int { raw, .. } => body.push_str(raw),
                other => body.push_str(other.lexeme()),
            }
            let _ = span;
        }
        let span = start.to(self.span());
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Asm { volatile, body },
            span,
        })
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // if
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = Box::new(self.parse_stmt()?);
        let else_branch = if self.at_ident("else") {
            self.bump();
            Some(Box::new(self.parse_stmt()?))
        } else {
            None
        };
        let span = start.to(else_branch
            .as_ref()
            .map(|e| e.span)
            .unwrap_or(then_branch.span));
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            span,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // while
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        let span = start.to(body.span);
        Ok(Stmt {
            kind: StmtKind::While { cond, body },
            span,
        })
    }

    fn parse_do_while(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // do
        let body = Box::new(self.parse_stmt()?);
        if !self.eat_ident("while") {
            return Err(crate::error::Error::parse(
                "expected `while` after do-block",
                self.span(),
            ));
        }
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let span = start.to(self.span());
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt {
            kind: StmtKind::DoWhile { body, cond },
            span,
        })
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // for
        self.expect(&TokenKind::LParen)?;
        let init = if self.at(&TokenKind::Semi) {
            self.bump();
            None
        } else if self.at_decl_start() {
            let d = self.parse_local_decl()?;
            let span = d.span;
            Some(Box::new(Stmt {
                kind: StmtKind::Decl(d),
                span,
            }))
        } else {
            let e = self.parse_expr()?;
            let span = e.span;
            self.expect(&TokenKind::Semi)?;
            Some(Box::new(Stmt {
                kind: StmtKind::Expr(e),
                span,
            }))
        };
        let cond = if self.at(&TokenKind::Semi) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.at(&TokenKind::RParen) {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        let span = start.to(body.span);
        Ok(Stmt {
            kind: StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            span,
        })
    }

    fn parse_switch(&mut self) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // switch
        self.expect(&TokenKind::LParen)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.parse_stmt()?);
        let span = start.to(body.span);
        Ok(Stmt {
            kind: StmtKind::Switch { cond, body },
            span,
        })
    }
}
