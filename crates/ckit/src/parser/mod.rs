//! Recursive-descent parser for the kernel-C subset.
//!
//! Top-level recovery: if an item fails to parse, the error is recorded and
//! the parser skips to a synchronization point (`;` or a balanced `}`) and
//! continues — a static analyzer must survive files it only half
//! understands, the way Smatch does.

mod expr;
mod stmt;
mod types;

#[cfg(test)]
mod tests;

use crate::ast::*;
use crate::error::{Error, Result};
use crate::intern::Name;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::collections::HashSet;

/// Typedef names assumed known even without their headers: the common
/// kernel and libc type vocabulary. Anything else can be registered through
/// [`ParserConfig::typedefs`].
const BUILTIN_TYPEDEFS: &[&str] = &[
    "u8",
    "u16",
    "u32",
    "u64",
    "s8",
    "s16",
    "s32",
    "s64",
    "__u8",
    "__u16",
    "__u32",
    "__u64",
    "__s8",
    "__s16",
    "__s32",
    "__s64",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "size_t",
    "ssize_t",
    "ptrdiff_t",
    "uintptr_t",
    "intptr_t",
    "loff_t",
    "off_t",
    "pid_t",
    "gfp_t",
    "dma_addr_t",
    "phys_addr_t",
    "atomic_t",
    "atomic64_t",
    "atomic_long_t",
    "seqcount_t",
    "seqlock_t",
    "spinlock_t",
    "raw_spinlock_t",
    "rwlock_t",
    "wait_queue_head_t",
    "completion_t",
    "ktime_t",
    "cpumask_t",
    "bool_t",
    "uint",
    "ulong",
    "ushort",
    "uchar",
];

/// Declaration-specifier keywords and kernel annotations that we accept and
/// discard (they never affect the barrier analysis).
const SKIPPED_ATTRS: &[&str] = &[
    "__rcu",
    "__percpu",
    "__user",
    "__iomem",
    "__kernel",
    "__force",
    "__init",
    "__exit",
    "__initdata",
    "__exitdata",
    "__read_mostly",
    "__always_inline",
    "__maybe_unused",
    "__must_check",
    "__used",
    "__cold",
    "__hot",
    "__weak",
    "__packed",
    "__pure",
    "__noreturn",
    "noinline",
    "asmlinkage",
    "__cacheline_aligned",
    "__cacheline_aligned_in_smp",
    "__randomize_layout",
    "__visible",
    "__ref",
    "__refdata",
    "__sched",
    "__latent_entropy",
    "__private",
];

/// Parser options.
#[derive(Clone, Debug, Default)]
pub struct ParserConfig {
    /// Additional typedef names to recognize.
    pub typedefs: Vec<String>,
}

/// Parse outcome: the (possibly partial) unit and item-level errors that
/// were recovered from.
#[derive(Clone, Debug)]
pub struct ParseOutput {
    pub unit: TranslationUnit,
    pub errors: Vec<Error>,
}

/// Parse a preprocessed token stream.
pub fn parse_tokens(tokens: Vec<Token>, config: &ParserConfig) -> ParseOutput {
    let mut typedefs: HashSet<String> = BUILTIN_TYPEDEFS.iter().map(|s| s.to_string()).collect();
    typedefs.extend(config.typedefs.iter().cloned());
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        typedefs,
        errors: Vec::new(),
        last_params: Vec::new(),
    };
    let unit = p.parse_unit();
    ParseOutput {
        unit,
        errors: p.errors,
    }
}

pub(crate) struct Parser {
    toks: Vec<Token>,
    pos: usize,
    pub(crate) typedefs: HashSet<String>,
    errors: Vec<Error>,
    /// Parameters of the most recently parsed function declarator; consumed
    /// by `take_last_params` when a declarator turns out to be a function
    /// definition or prototype.
    pub(crate) last_params: Vec<Param>,
}

impl Parser {
    // ---- cursor -------------------------------------------------------

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    pub(crate) fn peek_n(&self, n: usize) -> &TokenKind {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].kind
    }

    pub(crate) fn span(&self) -> Span {
        self.toks[self.pos.min(self.toks.len() - 1)].span
    }

    pub(crate) fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1).min(self.toks.len() - 1)].span
    }

    pub(crate) fn bump(&mut self) -> TokenKind {
        let k = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        k
    }

    pub(crate) fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    pub(crate) fn at_ident(&self, name: &str) -> bool {
        self.peek().ident() == Some(name)
    }

    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<Span> {
        if self.at(kind) {
            let sp = self.span();
            self.bump();
            Ok(sp)
        } else {
            Err(Error::parse(
                format!(
                    "expected `{}`, found {}",
                    kind.lexeme(),
                    self.peek().describe()
                ),
                self.span(),
            ))
        }
    }

    pub(crate) fn expect_ident(&mut self) -> Result<(Name, Span)> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                let sp = self.span();
                self.bump();
                Ok((s, sp))
            }
            other => Err(Error::parse(
                format!("expected identifier, found {}", other.describe()),
                self.span(),
            )),
        }
    }

    pub(crate) fn at_eof(&self) -> bool {
        self.peek().is_eof()
    }

    /// Skip `__attribute__((...))` and bare kernel annotation identifiers.
    pub(crate) fn skip_attributes(&mut self) {
        loop {
            if self.at_ident("__attribute__") || self.at_ident("__attribute") {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.skip_balanced_parens();
                }
                continue;
            }
            // `__aligned(8)`, `__section("...")`-style annotations.
            if let Some(name) = self.peek().ident() {
                if matches!(name, "__aligned" | "__section" | "____cacheline_aligned")
                    && self.peek_n(1) == &TokenKind::LParen
                {
                    self.bump();
                    self.skip_balanced_parens();
                    continue;
                }
                if SKIPPED_ATTRS.contains(&name) {
                    self.bump();
                    continue;
                }
            }
            break;
        }
    }

    fn skip_balanced_parens(&mut self) {
        debug_assert!(self.at(&TokenKind::LParen));
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::LParen => depth += 1,
                TokenKind::RParen => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                TokenKind::Eof => return,
                _ => {}
            }
            self.bump();
        }
    }

    // ---- items --------------------------------------------------------

    fn parse_unit(&mut self) -> TranslationUnit {
        let mut items = Vec::new();
        while !self.at_eof() {
            let before = self.pos;
            match self.parse_item() {
                Ok(mut new_items) => items.append(&mut new_items),
                Err(e) => {
                    self.errors.push(e);
                    self.recover_item(before);
                }
            }
        }
        TranslationUnit { items }
    }

    /// Skip to the next plausible item start after a parse error.
    fn recover_item(&mut self, before: usize) {
        if self.pos == before {
            self.bump(); // guarantee progress
        }
        let mut depth = 0usize;
        while !self.at_eof() {
            match self.peek() {
                TokenKind::LBrace => depth += 1,
                TokenKind::RBrace => {
                    if depth <= 1 {
                        self.bump();
                        self.eat(&TokenKind::Semi);
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Parse one top-level item. May produce several AST items (e.g.
    /// `struct s { ... } v;` yields a struct def and a global).
    fn parse_item(&mut self) -> Result<Vec<Item>> {
        self.skip_attributes();
        if self.eat(&TokenKind::Semi) {
            return Ok(vec![]);
        }
        // `typedef ...`
        if self.at_ident("typedef") {
            return self.parse_typedef().map(|t| vec![Item::Typedef(t)]);
        }
        // struct/union/enum definitions (possibly with trailing declarators).
        if self.at_ident("struct") || self.at_ident("union") || self.at_ident("enum") {
            if let Some(items) = self.try_parse_tag_definition()? {
                return Ok(items);
            }
        }
        // Everything else: specifiers + declarator(s) → function or global.
        self.parse_function_or_global()
    }

    fn parse_typedef(&mut self) -> Result<Typedef> {
        let start = self.span();
        self.bump(); // typedef
        let (base, _flags) = self.parse_decl_specifiers()?;
        let (name, ty, _dspan) = self.parse_declarator(base.clone())?;
        let span = start.to(self.span());
        self.expect(&TokenKind::Semi)?;
        if name.is_empty() {
            return Err(Error::parse("typedef without a name", span));
        }
        self.typedefs.insert(name.to_string());
        Ok(Typedef { name, ty, span })
    }

    /// Try to parse `struct X { ... } [declarators] ;` or `enum X { ... };`.
    /// Returns `None` if this is just a type reference (`struct X *p = ...`),
    /// letting the general declaration path handle it.
    fn try_parse_tag_definition(&mut self) -> Result<Option<Vec<Item>>> {
        let start = self.span();
        let keyword = self.peek().ident().unwrap_or("").to_string();
        // Lookahead: `struct [name] {` is a definition.
        let (name_off, has_name) = match self.peek_n(1) {
            TokenKind::Ident(_) => (1, true),
            _ => (0, false),
        };
        let brace_off = if has_name { 2 } else { 1 };
        if self.peek_n(brace_off) != &TokenKind::LBrace {
            return Ok(None);
        }
        self.bump(); // struct/union/enum
        let name = if has_name {
            let _ = name_off;
            let (n, _) = self.expect_ident()?;
            n
        } else {
            Name::default()
        };
        self.expect(&TokenKind::LBrace)?;
        let mut items = Vec::new();
        if keyword == "enum" {
            let variants = self.parse_enum_body()?;
            let span = start.to(self.prev_span());
            items.push(Item::Enum(EnumDef {
                name: name.clone(),
                variants,
                span,
            }));
        } else {
            let fields = self.parse_struct_body()?;
            let span = start.to(self.prev_span());
            items.push(Item::Struct(StructDef {
                name: name.clone(),
                is_union: keyword == "union",
                fields,
                span,
            }));
        }
        self.skip_attributes();
        // Optional trailing declarators: `struct s { ... } a, *b;`
        if !self.at(&TokenKind::Semi) {
            let base = if keyword == "enum" {
                Type::Enum(name)
            } else {
                Type::Struct {
                    name,
                    is_union: keyword == "union",
                }
            };
            let decl = self.parse_declarator_list(base, start)?;
            items.push(Item::Global(decl));
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Some(items))
    }

    pub(crate) fn parse_struct_body(&mut self) -> Result<Vec<FieldDecl>> {
        let mut fields = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at_eof() {
            self.skip_attributes();
            if self.eat(&TokenKind::Semi) {
                continue;
            }
            // Anonymous nested struct/union: flatten its fields, matching
            // how C name lookup works for anonymous members.
            if (self.at_ident("struct") || self.at_ident("union"))
                && self.peek_n(1) == &TokenKind::LBrace
            {
                self.bump();
                self.expect(&TokenKind::LBrace)?;
                let inner = self.parse_struct_body()?;
                self.skip_attributes();
                if self.at(&TokenKind::Semi) {
                    // truly anonymous: flatten
                    fields.extend(inner);
                    self.bump();
                } else {
                    // named member of anonymous struct type: keep the member
                    let (mname, msp) = self.expect_ident()?;
                    fields.push(FieldDecl {
                        name: mname,
                        ty: Type::Struct {
                            name: Name::default(),
                            is_union: false,
                        },
                        span: msp,
                    });
                    self.expect(&TokenKind::Semi)?;
                }
                continue;
            }
            let (base, _) = self.parse_decl_specifiers()?;
            loop {
                let (name, ty, dspan) = self.parse_declarator(base.clone())?;
                // Bitfield `int x : 3;`
                if self.eat(&TokenKind::Colon) {
                    let _width = self.parse_conditional()?;
                }
                if !name.is_empty() {
                    fields.push(FieldDecl {
                        name,
                        ty,
                        span: dspan,
                    });
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Semi)?;
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(fields)
    }

    fn parse_enum_body(&mut self) -> Result<Vec<(Name, Option<Expr>)>> {
        let mut variants = Vec::new();
        while !self.at(&TokenKind::RBrace) && !self.at_eof() {
            let (name, _) = self.expect_ident()?;
            let value = if self.eat(&TokenKind::Assign) {
                Some(self.parse_conditional()?)
            } else {
                None
            };
            variants.push((name, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(variants)
    }

    fn parse_function_or_global(&mut self) -> Result<Vec<Item>> {
        let start = self.span();
        let (base, flags) = self.parse_decl_specifiers()?;
        // `int;` — pointless but legal-ish; skip.
        if self.eat(&TokenKind::Semi) {
            return Ok(vec![]);
        }
        let (name, ty, _dspan) = self.parse_declarator(base.clone())?;
        self.skip_attributes();
        // Function definition?
        if let Type::Func {
            ret,
            params: ptypes,
            variadic,
        } = &ty
        {
            if self.at(&TokenKind::LBrace) {
                let params = self.take_last_params(ptypes.len());
                let sig = FunctionSig {
                    name,
                    ret: (**ret).clone(),
                    params,
                    variadic: *variadic,
                    is_static: flags.is_static,
                    is_inline: flags.is_inline,
                    span: start.to(self.prev_span()),
                };
                let body_start = self.span();
                self.expect(&TokenKind::LBrace)?;
                let body = self.parse_block_stmts()?;
                let span = start.to(self.prev_span());
                let _ = body_start;
                return Ok(vec![Item::Function(FunctionDef { sig, body, span })]);
            }
            // Prototype.
            if self.at(&TokenKind::Semi) {
                self.bump();
                let params = self.take_last_params(ptypes.len());
                return Ok(vec![Item::Prototype(FunctionSig {
                    name,
                    ret: (**ret).clone(),
                    params,
                    variadic: *variadic,
                    is_static: flags.is_static,
                    is_inline: flags.is_inline,
                    span: start.to(self.prev_span()),
                })]);
            }
        }
        // Global variable(s).
        let init = if self.eat(&TokenKind::Assign) {
            Some(self.parse_initializer()?)
        } else {
            None
        };
        let mut decls = vec![Declarator {
            name,
            ty,
            init,
            span: start.to(self.prev_span()),
        }];
        while self.eat(&TokenKind::Comma) {
            let (n2, t2, sp2) = self.parse_declarator(base.clone())?;
            let init2 = if self.eat(&TokenKind::Assign) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            decls.push(Declarator {
                name: n2,
                ty: t2,
                init: init2,
                span: sp2,
            });
        }
        self.expect(&TokenKind::Semi)?;
        Ok(vec![Item::Global(DeclStmt {
            decls,
            span: start.to(self.prev_span()),
        })])
    }

    /// Parse `base d1 [, d2]* ;`-style declarator lists (used after a tag
    /// definition). Does not consume the trailing `;`.
    fn parse_declarator_list(&mut self, base: Type, start: Span) -> Result<DeclStmt> {
        let mut decls = Vec::new();
        loop {
            let (name, ty, dspan) = self.parse_declarator(base.clone())?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.parse_initializer()?)
            } else {
                None
            };
            decls.push(Declarator {
                name,
                ty,
                init,
                span: dspan,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(DeclStmt {
            decls,
            span: start.to(self.prev_span()),
        })
    }
}

#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpecFlags {
    pub is_static: bool,
    pub is_inline: bool,
    pub is_extern: bool,
    pub is_typedef: bool,
}
