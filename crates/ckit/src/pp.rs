//! Preprocessor-lite.
//!
//! Operates on the raw token stream from [`crate::lexer`]. Supported, which
//! covers everything the corpus generator and the paper fixtures emit plus
//! the common patterns in kernel C:
//!
//! * `#include` — recorded (for provenance) and skipped; we analyze single
//!   translation units the way Smatch does per-file runs.
//! * `#define` / `#undef` — object-like and function-like macros, with
//!   argument substitution and a recursion guard. `#`/`##` operators are not
//!   expanded (rare around barrier code); their tokens are passed through.
//! * `#if` / `#ifdef` / `#ifndef` / `#elif` / `#else` / `#endif` — full
//!   conditional evaluation with `defined(X)`, integer arithmetic, logical
//!   and comparison operators. Undefined identifiers evaluate to 0, matching
//!   cpp.
//! * `#pragma`, `#error`, `#warning` — skipped.
//!
//! Expanded tokens keep the span of the macro *invocation site* so that all
//! downstream diagnostics and patches point into real source text.

use crate::error::{Error, Result};
use crate::intern::Name;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::collections::HashMap;

/// A macro definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MacroDef {
    pub name: String,
    /// `None` for object-like macros; parameter names for function-like.
    pub params: Option<Vec<String>>,
    /// Whether a function-like macro is variadic (`...` last parameter).
    pub variadic: bool,
    pub body: Vec<Token>,
}

/// Preprocessor configuration: the initial define set (think `-D` flags and
/// the kernel config).
#[derive(Clone, Debug, Default)]
pub struct PpConfig {
    pub defines: HashMap<String, MacroDef>,
}

impl PpConfig {
    /// Define an object-like macro expanding to a single integer.
    pub fn define_int(&mut self, name: &str, value: u64) -> &mut Self {
        self.defines.insert(
            name.to_string(),
            MacroDef {
                name: name.to_string(),
                params: None,
                variadic: false,
                body: vec![Token::new(
                    TokenKind::Int {
                        raw: value.to_string().into(),
                        value,
                    },
                    Span::DUMMY,
                )],
            },
        );
        self
    }

    /// Define an object-like macro with an empty body (like `-DNAME`).
    pub fn define_flag(&mut self, name: &str) -> &mut Self {
        self.defines.insert(
            name.to_string(),
            MacroDef {
                name: name.to_string(),
                params: None,
                variadic: false,
                body: Vec::new(),
            },
        );
        self
    }
}

/// Result of preprocessing one file.
#[derive(Clone, Debug, Default)]
pub struct PpOutput {
    /// Token stream ready for the parser (no `Hash` tokens, `Eof`-terminated).
    pub tokens: Vec<Token>,
    /// Include paths seen, in order.
    pub includes: Vec<String>,
    /// Macros defined by the file itself (after processing).
    pub defines: HashMap<String, MacroDef>,
}

/// Preprocess a lexed token stream.
pub fn preprocess(tokens: Vec<Token>, config: &PpConfig) -> Result<PpOutput> {
    let mut pp = Pp {
        toks: tokens,
        pos: 0,
        macros: config.defines.clone(),
        out: Vec::new(),
        includes: Vec::new(),
        // Condition stack: (currently_active, any_branch_taken_yet)
        conds: Vec::new(),
    };
    pp.run()?;
    let eof_span = pp.out.last().map(|t| t.span).unwrap_or(Span::DUMMY);
    pp.out.push(Token::new(TokenKind::Eof, eof_span));
    Ok(PpOutput {
        tokens: pp.out,
        includes: pp.includes,
        defines: pp.macros,
    })
}

struct Pp {
    toks: Vec<Token>,
    pos: usize,
    macros: HashMap<String, MacroDef>,
    out: Vec<Token>,
    includes: Vec<String>,
    conds: Vec<(bool, bool)>,
}

impl Pp {
    fn active(&self) -> bool {
        self.conds.iter().all(|&(a, _)| a)
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn run(&mut self) -> Result<()> {
        while self.pos < self.toks.len() {
            let tok = self.toks[self.pos].clone();
            match tok.kind {
                TokenKind::Eof => break,
                TokenKind::Hash if tok.at_line_start => {
                    self.pos += 1;
                    self.directive(tok.span)?;
                }
                _ => {
                    self.pos += 1;
                    if self.active() {
                        // Fast path: a token that can't start a macro
                        // expansion goes straight to the output. This is
                        // the overwhelmingly common case (most files
                        // define no macros at all), and skipping the
                        // general expansion machinery avoids a Vec
                        // allocation per token.
                        let expandable = tok
                            .kind
                            .ident()
                            .is_some_and(|n| self.macros.contains_key(n));
                        if expandable {
                            self.emit(tok)?;
                        } else {
                            self.out.push(tok);
                        }
                    }
                }
            }
        }
        if self.conds.last().is_some() {
            return Err(Error::pp(
                "unterminated #if/#ifdef block",
                self.toks.last().map(|t| t.span).unwrap_or(Span::DUMMY),
            ));
        }
        Ok(())
    }

    /// Collect the remaining tokens of the current directive line.
    fn directive_line(&mut self) -> Vec<Token> {
        let mut line = Vec::new();
        while self.pos < self.toks.len() {
            let t = &self.toks[self.pos];
            if t.kind.is_eof() || t.at_line_start {
                break;
            }
            line.push(t.clone());
            self.pos += 1;
        }
        line
    }

    fn directive(&mut self, hash_span: Span) -> Result<()> {
        let line = self.directive_line();
        let Some(first) = line.first() else {
            return Ok(()); // null directive `#`
        };
        let name = match first.kind.ident() {
            Some(n) => n.to_string(),
            None => {
                // `#if` with weird shape etc.; tolerate unknown directives.
                return Ok(());
            }
        };
        let rest = &line[1..];
        match name.as_str() {
            "include" if self.active() => {
                let path = rest
                    .iter()
                    .map(|t| match &t.kind {
                        TokenKind::Str(s) => s.trim_matches('"').to_string(),
                        k if k.ident().is_some() => k.ident().unwrap().to_string(),
                        k => k.lexeme().to_string(),
                    })
                    .collect::<String>();
                self.includes.push(path);
            }
            "define" if self.active() => {
                self.handle_define(rest, hash_span)?;
            }
            "undef" if self.active() => {
                if let Some(n) = rest.first().and_then(|t| t.kind.ident()) {
                    self.macros.remove(n);
                }
            }
            "ifdef" | "ifndef" => {
                let defined = rest
                    .first()
                    .and_then(|t| t.kind.ident())
                    .map(|n| self.macros.contains_key(n))
                    .unwrap_or(false);
                let val = if name == "ifdef" { defined } else { !defined };
                let active = self.active() && val;
                self.conds.push((active, active));
            }
            "if" => {
                let val = self.active() && self.eval_condition(rest, hash_span)? != 0;
                self.conds.push((val, val));
            }
            "elif" => {
                let Some((_, taken)) = self.conds.pop() else {
                    return Err(Error::pp("#elif without #if", hash_span));
                };
                let parent_active = self.active();
                let val = parent_active && !taken && self.eval_condition(rest, hash_span)? != 0;
                self.conds.push((val, taken || val));
            }
            "else" => {
                let Some((_, taken)) = self.conds.pop() else {
                    return Err(Error::pp("#else without #if", hash_span));
                };
                let parent_active = self.active();
                let val = parent_active && !taken;
                self.conds.push((val, true));
            }
            "endif" if self.conds.pop().is_none() => {
                return Err(Error::pp("#endif without #if", hash_span));
            }
            "pragma" | "error" | "warning" | "line" => {}
            _ => {} // unknown directive: skip, keep going
        }
        Ok(())
    }

    fn handle_define(&mut self, rest: &[Token], span: Span) -> Result<()> {
        let Some(name_tok) = rest.first() else {
            return Err(Error::pp("#define without a name", span));
        };
        let Some(name) = name_tok.kind.ident() else {
            return Err(Error::pp("#define name must be an identifier", span));
        };
        let name = name.to_string();
        // Function-like iff `(` immediately follows the name with no space.
        // We approximate "no space" by adjacency of spans, which the lexer
        // guarantees for adjacent source bytes.
        let is_fnlike = rest.len() > 1
            && rest[1].kind == TokenKind::LParen
            && rest[1].span.lo == name_tok.span.hi;
        if !is_fnlike {
            self.macros.insert(
                name.clone(),
                MacroDef {
                    name,
                    params: None,
                    variadic: false,
                    body: rest[1..].to_vec(),
                },
            );
            return Ok(());
        }
        let mut params = Vec::new();
        let mut variadic = false;
        let mut i = 2;
        loop {
            let Some(t) = rest.get(i) else {
                return Err(Error::pp("unterminated macro parameter list", span));
            };
            match &t.kind {
                TokenKind::RParen => {
                    i += 1;
                    break;
                }
                TokenKind::Comma => i += 1,
                TokenKind::Ellipsis => {
                    variadic = true;
                    i += 1;
                }
                k if k.ident().is_some() => {
                    params.push(k.ident().unwrap().to_string());
                    i += 1;
                }
                _ => {
                    return Err(Error::pp(
                        format!("unexpected {} in macro parameter list", t.kind.describe()),
                        t.span,
                    ))
                }
            }
        }
        self.macros.insert(
            name.clone(),
            MacroDef {
                name,
                params: Some(params),
                variadic,
                body: rest[i..].to_vec(),
            },
        );
        Ok(())
    }

    /// Emit a token, expanding macros.
    fn emit(&mut self, tok: Token) -> Result<()> {
        let expanded = self.expand_token(tok, &mut Vec::new())?;
        self.out.extend(expanded);
        Ok(())
    }

    /// Expand one token (possibly consuming following argument tokens from
    /// the main stream for function-like macros). `hide` is the set of macro
    /// names currently being expanded — the standard recursion guard.
    fn expand_token(&mut self, tok: Token, hide: &mut Vec<Name>) -> Result<Vec<Token>> {
        let Some(name) = tok.kind.ident_name().cloned() else {
            return Ok(vec![tok]);
        };
        if hide.contains(&name) {
            return Ok(vec![tok]);
        }
        let Some(def) = self.macros.get(name.as_str()).cloned() else {
            return Ok(vec![tok]);
        };
        match def.params {
            None => {
                hide.push(name);
                let result = self.expand_body(&def.body, &HashMap::new(), tok.span, hide)?;
                hide.pop();
                Ok(result)
            }
            Some(ref params) => {
                // Function-like macro: only expands when followed by `(`.
                if self.peek().kind != TokenKind::LParen {
                    return Ok(vec![tok]);
                }
                self.pos += 1; // consume `(`
                let args = self.collect_args(tok.span)?;
                if args.len() < params.len() && !(params.is_empty() && args.is_empty()) {
                    // Tolerate too-few args (kernel macros get weird); pad.
                }
                let mut binding: HashMap<String, Vec<Token>> = HashMap::new();
                for (i, p) in params.iter().enumerate() {
                    binding.insert(p.clone(), args.get(i).cloned().unwrap_or_default());
                }
                if def.variadic {
                    let extra: Vec<Token> = args
                        .iter()
                        .skip(params.len())
                        .enumerate()
                        .flat_map(|(i, a)| {
                            let mut v = Vec::new();
                            if i > 0 {
                                v.push(Token::new(TokenKind::Comma, tok.span));
                            }
                            v.extend(a.clone());
                            v
                        })
                        .collect();
                    binding.insert("__VA_ARGS__".to_string(), extra);
                }
                hide.push(name);
                let result = self.expand_body(&def.body, &binding, tok.span, hide)?;
                hide.pop();
                Ok(result)
            }
        }
    }

    /// Collect macro call arguments after the opening paren (consumed).
    fn collect_args(&mut self, call_span: Span) -> Result<Vec<Vec<Token>>> {
        let mut args: Vec<Vec<Token>> = Vec::new();
        let mut cur: Vec<Token> = Vec::new();
        let mut depth = 0usize;
        let mut saw_any = false;
        loop {
            if self.pos >= self.toks.len() || self.peek().kind.is_eof() {
                return Err(Error::pp("unterminated macro invocation", call_span));
            }
            let t = self.toks[self.pos].clone();
            self.pos += 1;
            match t.kind {
                TokenKind::Hash if t.at_line_start => {
                    return Err(Error::pp(
                        "preprocessor directive inside macro invocation",
                        t.span,
                    ));
                }
                TokenKind::LParen | TokenKind::LBrace | TokenKind::LBracket => {
                    depth += 1;
                    saw_any = true;
                    cur.push(t);
                }
                TokenKind::RParen if depth == 0 => {
                    if saw_any || !args.is_empty() {
                        args.push(cur);
                    }
                    return Ok(args);
                }
                TokenKind::RParen | TokenKind::RBrace | TokenKind::RBracket => {
                    depth = depth.saturating_sub(1);
                    saw_any = true;
                    cur.push(t);
                }
                TokenKind::Comma if depth == 0 => {
                    args.push(std::mem::take(&mut cur));
                    saw_any = true;
                }
                _ => {
                    saw_any = true;
                    cur.push(t);
                }
            }
        }
    }

    /// Substitute parameters into a macro body and rescan for further
    /// expansions. All produced tokens take the invocation-site span.
    fn expand_body(
        &mut self,
        body: &[Token],
        binding: &HashMap<String, Vec<Token>>,
        site: Span,
        hide: &mut Vec<Name>,
    ) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            let t = &body[i];
            // Skip stringize/paste operators; splice operands directly.
            if t.kind == TokenKind::Hash {
                i += 1;
                continue;
            }
            if let Some(name) = t.kind.ident() {
                if let Some(arg) = binding.get(name) {
                    for a in arg {
                        let mut a = a.clone();
                        a.span = site;
                        a.at_line_start = false;
                        // Rescan argument tokens for nested object-like macros.
                        let expanded = self.expand_inline(a, hide)?;
                        out.extend(expanded);
                    }
                    i += 1;
                    continue;
                }
                // Nested macro in the body itself.
                let mut t2 = t.clone();
                t2.span = site;
                t2.at_line_start = false;
                // Function-like nested macros need their args from the body,
                // which `expand_inline` cannot consume from the main stream;
                // handle the common object-like case and pass fn-like through
                // (their call parens are in the body and will be re-expanded
                // token by token below — good enough for barrier code).
                let expanded = self.expand_inline(t2, hide)?;
                out.extend(expanded);
                i += 1;
                continue;
            }
            let mut t2 = t.clone();
            t2.span = site;
            t2.at_line_start = false;
            out.push(t2);
            i += 1;
        }
        Ok(out)
    }

    /// Expand a single token without access to the following main-stream
    /// tokens (so function-like macros are left alone unless their `(` is
    /// adjacent in the stream — handled by the caller at top level).
    fn expand_inline(&mut self, tok: Token, hide: &mut Vec<Name>) -> Result<Vec<Token>> {
        let Some(name) = tok.kind.ident_name().cloned() else {
            return Ok(vec![tok]);
        };
        if hide.contains(&name) {
            return Ok(vec![tok]);
        }
        let Some(def) = self.macros.get(name.as_str()).cloned() else {
            return Ok(vec![tok]);
        };
        if def.params.is_some() {
            return Ok(vec![tok]); // function-like: leave for rescan
        }
        hide.push(name);
        let result = self.expand_body(&def.body, &HashMap::new(), tok.span, hide)?;
        hide.pop();
        Ok(result)
    }

    /// Evaluate a `#if`/`#elif` condition.
    fn eval_condition(&mut self, toks: &[Token], span: Span) -> Result<i64> {
        // First pass: resolve `defined(X)` / `defined X`, expand macros.
        let mut resolved: Vec<Token> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.kind.ident() == Some("defined") {
                let (name, consumed) =
                    if toks.get(i + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                        let n = toks
                            .get(i + 2)
                            .and_then(|t| t.kind.ident())
                            .ok_or_else(|| Error::pp("malformed defined()", span))?;
                        if toks.get(i + 3).map(|t| &t.kind) != Some(&TokenKind::RParen) {
                            return Err(Error::pp("malformed defined()", span));
                        }
                        (n.to_string(), 4)
                    } else {
                        let n = toks
                            .get(i + 1)
                            .and_then(|t| t.kind.ident())
                            .ok_or_else(|| Error::pp("malformed defined", span))?;
                        (n.to_string(), 2)
                    };
                let v = u64::from(self.macros.contains_key(&name));
                resolved.push(Token::new(
                    TokenKind::Int {
                        raw: v.to_string().into(),
                        value: v,
                    },
                    t.span,
                ));
                i += consumed;
                continue;
            }
            if let Some(name) = t.kind.ident() {
                if let Some(def) = self.macros.get(name).cloned() {
                    if def.params.is_none() {
                        // Substitute object-like macro body inline (shallow:
                        // one level is enough for config-style conditions).
                        resolved.extend(def.body.iter().cloned());
                        i += 1;
                        continue;
                    }
                }
                // Undefined identifier → 0, per the C standard.
                resolved.push(Token::new(
                    TokenKind::Int {
                        raw: "0".into(),
                        value: 0,
                    },
                    t.span,
                ));
                i += 1;
                continue;
            }
            resolved.push(t.clone());
            i += 1;
        }
        let mut ev = CondEval {
            toks: &resolved,
            pos: 0,
            span,
        };
        let v = ev.expr(0)?;
        Ok(v)
    }
}

/// Minimal Pratt evaluator for `#if` integer expressions.
struct CondEval<'a> {
    toks: &'a [Token],
    pos: usize,
    span: Span,
}

impl<'a> CondEval<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let k = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        k
    }

    fn atom(&mut self) -> Result<i64> {
        match self.bump() {
            Some(TokenKind::Int { value, .. }) => Ok(value as i64),
            Some(TokenKind::Char(_)) => Ok(1),
            Some(TokenKind::LParen) => {
                let v = self.expr(0)?;
                if self.bump() != Some(TokenKind::RParen) {
                    return Err(Error::pp("expected `)` in #if expression", self.span));
                }
                Ok(v)
            }
            Some(TokenKind::Bang) => Ok((self.atom()? == 0) as i64),
            Some(TokenKind::Minus) => Ok(-self.atom()?),
            Some(TokenKind::Plus) => self.atom(),
            Some(TokenKind::Tilde) => Ok(!self.atom()?),
            _ => Err(Error::pp("malformed #if expression", self.span)),
        }
    }

    fn expr(&mut self, min_bp: u8) -> Result<i64> {
        let mut lhs = self.atom()?;
        while let Some(op) = self.peek().cloned() {
            let bp = match op {
                TokenKind::Star | TokenKind::Slash | TokenKind::Percent => 10,
                TokenKind::Plus | TokenKind::Minus => 9,
                TokenKind::Shl | TokenKind::Shr => 8,
                TokenKind::Lt | TokenKind::Gt | TokenKind::Le | TokenKind::Ge => 7,
                TokenKind::EqEq | TokenKind::Ne => 6,
                TokenKind::Amp => 5,
                TokenKind::Caret => 4,
                TokenKind::Pipe => 3,
                TokenKind::AmpAmp => 2,
                TokenKind::PipePipe => 1,
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.pos += 1;
            let rhs = self.expr(bp + 1)?;
            lhs = match op {
                TokenKind::Star => lhs.wrapping_mul(rhs),
                TokenKind::Slash => {
                    if rhs == 0 {
                        return Err(Error::pp("division by zero in #if", self.span));
                    }
                    lhs / rhs
                }
                TokenKind::Percent => {
                    if rhs == 0 {
                        return Err(Error::pp("modulo by zero in #if", self.span));
                    }
                    lhs % rhs
                }
                TokenKind::Plus => lhs.wrapping_add(rhs),
                TokenKind::Minus => lhs.wrapping_sub(rhs),
                TokenKind::Shl => lhs.wrapping_shl(rhs as u32),
                TokenKind::Shr => lhs.wrapping_shr(rhs as u32),
                TokenKind::Lt => (lhs < rhs) as i64,
                TokenKind::Gt => (lhs > rhs) as i64,
                TokenKind::Le => (lhs <= rhs) as i64,
                TokenKind::Ge => (lhs >= rhs) as i64,
                TokenKind::EqEq => (lhs == rhs) as i64,
                TokenKind::Ne => (lhs != rhs) as i64,
                TokenKind::Amp => lhs & rhs,
                TokenKind::Caret => lhs ^ rhs,
                TokenKind::Pipe => lhs | rhs,
                TokenKind::AmpAmp => ((lhs != 0) && (rhs != 0)) as i64,
                TokenKind::PipePipe => ((lhs != 0) || (rhs != 0)) as i64,
                _ => unreachable!(),
            };
        }
        Ok(lhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pp(src: &str) -> PpOutput {
        preprocess(lex(src).unwrap(), &PpConfig::default()).unwrap()
    }

    fn texts(out: &PpOutput) -> Vec<String> {
        out.tokens
            .iter()
            .filter(|t| !t.kind.is_eof())
            .map(|t| match &t.kind {
                TokenKind::Ident(s) => s.to_string(),
                TokenKind::Int { raw, .. } => raw.to_string(),
                TokenKind::Str(s) => s.clone(),
                k => k.lexeme().to_string(),
            })
            .collect()
    }

    #[test]
    fn object_macro_expands() {
        let out = pp("#define N 4\nint x = N;");
        assert_eq!(texts(&out), vec!["int", "x", "=", "4", ";"]);
    }

    #[test]
    fn nested_object_macros() {
        let out = pp("#define A B\n#define B 7\nint x = A;");
        assert_eq!(texts(&out), vec!["int", "x", "=", "7", ";"]);
    }

    #[test]
    fn recursive_macro_terminates() {
        let out = pp("#define A A\nint A;");
        assert_eq!(texts(&out), vec!["int", "A", ";"]);
    }

    #[test]
    fn function_macro_substitutes_args() {
        let out = pp("#define MAX(a, b) ((a) > (b) ? (a) : (b))\nint m = MAX(x, 3);");
        assert_eq!(
            texts(&out).join(" "),
            "int m = ( ( x ) > ( 3 ) ? ( x ) : ( 3 ) ) ;"
        );
    }

    #[test]
    fn function_macro_without_parens_not_expanded() {
        let out = pp("#define F(x) x\nint F;");
        assert_eq!(texts(&out), vec!["int", "F", ";"]);
    }

    #[test]
    fn ifdef_blocks() {
        let out = pp("#define CONFIG_SMP\n#ifdef CONFIG_SMP\nint a;\n#else\nint b;\n#endif");
        assert_eq!(texts(&out), vec!["int", "a", ";"]);
        let out = pp("#ifdef CONFIG_SMP\nint a;\n#else\nint b;\n#endif");
        assert_eq!(texts(&out), vec!["int", "b", ";"]);
    }

    #[test]
    fn if_expression() {
        let out = pp("#if 2 * 3 == 6 && defined(X)\nint a;\n#endif\nint z;");
        assert_eq!(texts(&out), vec!["int", "z", ";"]);
        let out = pp("#define X 1\n#if 2 * 3 == 6 && defined(X)\nint a;\n#endif");
        assert_eq!(texts(&out), vec!["int", "a", ";"]);
    }

    #[test]
    fn elif_chain() {
        let src = "#define V 2\n#if V == 1\nint a;\n#elif V == 2\nint b;\n#else\nint c;\n#endif";
        assert_eq!(texts(&pp(src)), vec!["int", "b", ";"]);
    }

    #[test]
    fn nested_conditionals() {
        let src = "#if 1\n#if 0\nint a;\n#endif\nint b;\n#endif";
        assert_eq!(texts(&pp(src)), vec!["int", "b", ";"]);
    }

    #[test]
    fn if_zero_skips_garbage() {
        let src = "#if 0\nthis is ! not , valid ; c code\n#endif\nint x;";
        assert_eq!(texts(&pp(src)), vec!["int", "x", ";"]);
    }

    #[test]
    fn include_recorded() {
        let out = pp("#include <linux/kernel.h>\n#include \"local.h\"\nint x;");
        assert_eq!(out.includes, vec!["<linux/kernel.h>", "local.h"]);
        assert_eq!(texts(&out), vec!["int", "x", ";"]);
    }

    #[test]
    fn undef_works() {
        let out = pp("#define A 1\n#undef A\nint x = A;");
        assert_eq!(texts(&out), vec!["int", "x", "=", "A", ";"]);
    }

    #[test]
    fn line_continuation_in_define() {
        let out = pp("#define SUM(a, b) \\\n ((a) + (b))\nint s = SUM(1, 2);");
        assert_eq!(texts(&out).join(" "), "int s = ( ( 1 ) + ( 2 ) ) ;");
    }

    #[test]
    fn unbalanced_endif_errors() {
        let toks = lex("#endif\n").unwrap();
        assert!(preprocess(toks, &PpConfig::default()).is_err());
    }

    #[test]
    fn unterminated_if_errors() {
        let toks = lex("#if 1\nint x;\n").unwrap();
        assert!(preprocess(toks, &PpConfig::default()).is_err());
    }

    #[test]
    fn expansion_keeps_call_site_span() {
        let src = "#define FLAG 1\nint x = FLAG;";
        let out = pp(src);
        let one = out
            .tokens
            .iter()
            .find(|t| matches!(t.kind, TokenKind::Int { .. }))
            .unwrap();
        assert_eq!(one.span.slice(src), "FLAG");
    }

    #[test]
    fn variadic_macro() {
        let out = pp("#define P(fmt, ...) printk(fmt, __VA_ARGS__)\nP(\"x\", a, b);");
        assert_eq!(texts(&out).join(" "), "printk ( \"x\" , a , b ) ;");
    }

    #[test]
    fn config_defines() {
        let mut cfg = PpConfig::default();
        cfg.define_int("CONFIG_NR_CPUS", 8);
        let out = preprocess(lex("int n = CONFIG_NR_CPUS;").unwrap(), &cfg).unwrap();
        assert_eq!(texts(&out), vec!["int", "n", "=", "8", ";"]);
    }
}
