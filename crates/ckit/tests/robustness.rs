//! Robustness properties of the front end: a static analyzer's parser
//! must never panic, whatever bytes it is fed, and must be a projection
//! on code it accepts.

use proptest::prelude::*;

/// Source-ish strings: printable ASCII with C-flavoured punctuation
/// heavily represented.
fn arb_source() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("int".to_string()),
        Just("struct".to_string()),
        Just("if".to_string()),
        Just("return".to_string()),
        Just("smp_wmb".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just(";".to_string()),
        Just("*".to_string()),
        Just("->".to_string()),
        Just("=".to_string()),
        Just("#define".to_string()),
        Just("#if".to_string()),
        Just("#endif".to_string()),
        Just("\n".to_string()),
        "[a-z]{1,6}",
        "[0-9]{1,4}",
        Just("\"str\"".to_string()),
    ];
    proptest::collection::vec(token, 0..60).prop_map(|v| v.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The full front end returns Ok or Err — it never panics, loops, or
    /// overflows on adversarial input.
    #[test]
    fn front_end_never_panics(src in arb_source()) {
        let _ = ckit::parse_string("fuzz.c", &src);
    }

    /// Raw bytes (valid UTF-8 printable) are equally safe.
    #[test]
    fn lexer_never_panics(src in "[ -~\\n\\t]{0,200}") {
        let _ = ckit::lexer::lex(&src);
    }

    /// Whatever parses, pretty-prints, and reparses to the same AST shape.
    #[test]
    fn accepted_code_roundtrips(src in arb_source()) {
        let Ok(out) = ckit::parse_string("fuzz.c", &src) else { return Ok(()) };
        if !out.errors.is_empty() {
            return Ok(());
        }
        let printed = ckit::pretty::print_unit(&out.unit);
        let Ok(again) = ckit::parse_string("fuzz.c", &printed) else {
            return Err(TestCaseError::fail(format!(
                "printed output failed the front end:\n{printed}"
            )));
        };
        prop_assert!(
            again.errors.is_empty(),
            "printed output has parse errors: {:?}\nfrom:\n{printed}",
            again.errors
        );
        let twice = ckit::pretty::print_unit(&again.unit);
        prop_assert_eq!(printed, twice);
    }

    /// Span invariants: every top-level item's span is inside the file and
    /// non-inverted.
    #[test]
    fn spans_stay_in_bounds(src in arb_source()) {
        let Ok(out) = ckit::parse_string("fuzz.c", &src) else { return Ok(()) };
        for item in &out.unit.items {
            let span = item.span();
            prop_assert!(span.lo <= span.hi);
            prop_assert!((span.hi as usize) <= src.len());
        }
    }
}
