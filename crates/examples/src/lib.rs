//! Host crate for the runnable examples in the repository-root
//! `examples/` directory (see `Cargo.toml`'s `[[example]]` entries).
//! Intentionally empty: the examples exercise the public APIs of
//! `ofence`, `ofence-corpus`, `ckit`, `cfgir`, and `kmodel`.
